"""Tests for the experiment harness (small configurations).

The assertions here check the *shape* of each experiment's output -- the
orderings and monotonicities the paper reports -- on configurations small
enough to run in seconds.  The full-size regenerations live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations, cache_size, fig7a, fig7b, fig8a, fig8b, headline, warmup
from repro.experiments.config import ExperimentConfig, build_catalog, build_scenario


@pytest.fixture(scope="module")
def small_config() -> ExperimentConfig:
    """A scaled-down scenario that keeps every experiment fast."""
    return ExperimentConfig(
        object_count=30,
        query_count=1500,
        update_count=1500,
        sample_every=300,
        benefit_window=500,
    )


@pytest.fixture(scope="module")
def small_scenario(small_config):
    return build_scenario(small_config)


class TestConfigAndScenario:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(object_count=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.5)
        with pytest.raises(ValueError):
            ExperimentConfig(cache_fraction=0.0)

    def test_derived_quantities(self, small_config):
        assert small_config.total_events == 3000
        assert small_config.measure_from == 600
        assert small_config.server_size > 0

    def test_scaled_copy(self, small_config):
        scaled = small_config.scaled(query_count=10)
        assert scaled.query_count == 10
        assert small_config.query_count == 1500

    def test_catalog_matches_object_count(self, small_config):
        catalog = build_catalog(small_config)
        assert len(catalog) == small_config.object_count

    def test_scenario_traffic_near_targets(self, small_config, small_scenario):
        trace = small_scenario.trace
        server = small_scenario.catalog.total_size
        assert trace.total_query_cost() == pytest.approx(
            server * small_config.query_traffic_fraction, rel=1e-6
        )
        assert trace.total_update_cost() == pytest.approx(
            server * small_config.update_traffic_fraction, rel=1e-6
        )

    def test_scenario_is_reproducible(self, small_config):
        first = build_scenario(small_config)
        second = build_scenario(small_config)
        assert first.trace.describe() == second.trace.describe()
        assert first.update_region == second.update_region


class TestFig7aWorkload:
    def test_hotspots_are_distinct_and_workload_evolves(self, small_scenario):
        result = fig7a.characterise_trace(small_scenario.trace)
        assert result.hotspot_overlap <= 0.35
        assert result.evolution_distance > 0.05
        assert result.query_points and result.update_points
        report = fig7a.format_report(result)
        assert "query hotspots" in report

    def test_scatter_sample_is_thinned(self, small_scenario):
        result = fig7a.characterise_trace(small_scenario.trace)
        sample = result.scatter_sample(stride=100)
        assert len(sample) < (len(result.query_points) + len(result.update_points)) / 50


class TestFig7bCumulativeTraffic:
    @pytest.fixture(scope="class")
    def result(self, small_config):
        return fig7b.run(small_config)

    def test_all_policies_present(self, result):
        assert set(result.final_costs()) == set(fig7b.POLICY_ORDER)

    def test_vcover_beats_nocache_and_replica(self, result):
        costs = result.final_costs()
        assert costs["vcover"] < costs["nocache"]
        assert costs["vcover"] < costs["replica"]

    def test_soptimal_is_best(self, result):
        costs = result.final_costs()
        assert costs["soptimal"] <= min(costs["vcover"], costs["benefit"]) + 1e-6

    def test_cumulative_series_are_monotone(self, result):
        for policy in fig7b.POLICY_ORDER:
            series = [value for _, value in result.series(policy)]
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:], strict=False))

    def test_format_table_mentions_ratios(self, result):
        text = fig7b.format_table(result)
        assert "nocache_over_vcover" in text


class TestFig8aUpdateSweep:
    @pytest.fixture(scope="class")
    def result(self, small_config):
        return fig8a.run(small_config, multipliers=(0.5, 1.0, 1.5),
                         policies=("nocache", "replica", "vcover"))

    def test_nocache_flat_replica_linear(self, result):
        assert result.growth("nocache") == pytest.approx(1.0, rel=0.05)
        assert result.growth("replica") == pytest.approx(3.0, rel=0.15)

    def test_vcover_grows_slower_than_replica(self, result):
        assert result.growth("vcover") < result.growth("replica")

    def test_table_has_one_row_per_policy(self, result):
        text = fig8a.format_table(result)
        assert "nocache" in text and "replica" in text and "vcover" in text


class TestFig8bGranularity:
    def test_granularity_sweep_shape(self, small_config):
        result = fig8b.run(small_config, object_counts=(10, 30, 91))
        assert set(result.object_counts) == {10, 30, 91}
        assert all(value > 0 for value in result.traffic.values())
        assert result.best_level() in {10, 30, 91}
        assert "objects" in fig8b.format_table(result)

    def test_intermediate_granularity_not_worst(self, small_config):
        """The coarsest partitioning should not be the best one (Fig 8b shape)."""
        result = fig8b.run(small_config, object_counts=(10, 30, 91))
        assert result.traffic[30] <= result.traffic[10] * 1.25


class TestHeadline:
    def test_headline_claims_direction(self, small_config):
        result = headline.run(small_config, cache_fraction=0.2)
        assert result.traffic_reduction_vs_nocache > 0.15
        assert result.vcover_over_soptimal >= 1.0
        assert "traffic reduction" in headline.format_report(result)
        summary = result.summary()
        assert "benefit_over_vcover" in summary


class TestCacheSizeSweep:
    def test_bigger_cache_never_hurts_much(self, small_config):
        result = cache_size.run(
            small_config, fractions=(0.1, 0.3, 1.0), policies=("nocache", "vcover")
        )
        vcover = result.traffic["vcover"]
        assert vcover[-1] <= vcover[0] * 1.1
        assert result.traffic["nocache"][0] == pytest.approx(result.traffic["nocache"][-1])
        assert "vcover" in cache_size.format_table(result)

    def test_marginal_gain_length(self, small_config):
        result = cache_size.run(small_config, fractions=(0.1, 0.3), policies=("vcover",))
        assert len(result.marginal_gain("vcover")) == 1


class TestWarmup:
    def test_warmup_trajectory(self, small_config):
        result = warmup.run(small_config, sample_every=300)
        assert result.occupancy
        # Occupancy is low during the cheap-query prefix and higher at the end.
        first_occupancy = result.occupancy[0][1]
        last_occupancy = result.occupancy[-1][1]
        assert last_occupancy >= first_occupancy
        assert "Warm-up" in warmup.format_report(result)


class TestAblations:
    def test_loading_ablation_runs_both_variants(self, small_config, small_scenario):
        result = ablations.run_loading_ablation(small_config, small_scenario)
        assert set(result.traffic) == {"randomized", "counter"}
        relative = result.relative_to("randomized")
        assert relative["randomized"] == pytest.approx(1.0)

    def test_eviction_ablation(self, small_config, small_scenario):
        result = ablations.run_eviction_ablation(
            small_config, small_scenario, policies=("gds", "lru")
        )
        assert set(result.traffic) == {"gds", "lru"}
        assert "gds" in ablations.format_table("eviction", result)

    def test_flow_method_ablation_agrees(self, small_config, small_scenario):
        result = ablations.run_flow_method_ablation(small_config, small_scenario)
        assert result.traffic["edmonds-karp"] == pytest.approx(result.traffic["dinic"])

    def test_benefit_sensitivity_labels(self, small_config, small_scenario):
        result = ablations.run_benefit_sensitivity(
            small_config, small_scenario, windows=(250,), alphas=(0.3,)
        )
        assert set(result.traffic) == {"window=250", "alpha=0.3"}
