"""Tests for the VCover policy end to end (on small hand-built scenarios)."""

from __future__ import annotations

import pytest

from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from tests.conftest import make_query, make_update


def make_vcover(catalog=None, capacity=60.0, **config_kwargs):
    catalog = catalog or ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0, 4: 15.0})
    repository = Repository(catalog)
    link = NetworkLink(keep_records=True)
    policy = VCoverPolicy(repository, capacity, link, VCoverConfig(**config_kwargs))
    return policy, repository, link


def feed_update(policy, repository, update):
    repository.ingest_update(update)
    policy.on_update(update)


class TestMissingObjectPath:
    def test_query_with_missing_objects_is_shipped(self):
        policy, _, link = make_vcover()
        outcome = policy.on_query(make_query(1, object_ids=[1], cost=5.0, timestamp=1.0))
        assert not outcome.answered_at_cache
        assert outcome.query_shipping_cost == pytest.approx(5.0)
        assert link.total_by_mechanism()["query_shipping"] == pytest.approx(5.0)

    def test_expensive_query_triggers_load_for_next_time(self):
        policy, _, _ = make_vcover()
        first = policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        assert first.loaded_objects == [1]
        assert policy.is_resident(1)
        # The follow-up query is answered from the cache for free.
        second = policy.on_query(make_query(2, object_ids=[1], cost=50.0, timestamp=2.0))
        assert second.answered_at_cache
        assert second.total_cost == pytest.approx(0.0)

    def test_load_costs_charged_to_link(self):
        policy, _, link = make_vcover()
        outcome = policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        assert outcome.load_cost == pytest.approx(10.0)
        assert link.total_by_mechanism()["object_loading"] == pytest.approx(10.0)

    def test_cheap_queries_do_not_immediately_load(self):
        policy, _, _ = make_vcover(randomized_loading=False)
        outcome = policy.on_query(make_query(1, object_ids=[3], cost=1.0, timestamp=1.0))
        assert outcome.loaded_objects == []
        assert not policy.is_resident(3)

    def test_eviction_makes_room_for_better_object(self):
        policy, _, _ = make_vcover(capacity=25.0, randomized_loading=False)
        # Load object 2 (size 20) by paying its cost.
        policy.on_query(make_query(1, object_ids=[2], cost=25.0, timestamp=1.0))
        assert policy.is_resident(2)
        # Object 3 (size 30) can never fit in a 25 MB cache.
        policy.on_query(make_query(2, object_ids=[3], cost=100.0, timestamp=2.0))
        assert not policy.is_resident(3)
        # Object 1 (size 10) becomes worth caching; object 2 may be evicted to
        # make room only if needed -- here both fit? no: 20 + 10 = 30 > 25.
        outcome = policy.on_query(make_query(3, object_ids=[1], cost=90.0, timestamp=3.0))
        assert outcome.loaded_objects == [1]
        assert 2 in outcome.evicted_objects
        assert policy.is_resident(1) and not policy.is_resident(2)


class TestInCachePath:
    def test_fresh_cache_answers_for_free(self):
        policy, _, link = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))  # loads 1
        before = link.total_cost
        outcome = policy.on_query(make_query(2, object_ids=[1], cost=9.0, timestamp=2.0))
        assert outcome.answered_at_cache
        assert link.total_cost == pytest.approx(before)

    def test_cheap_outstanding_updates_are_shipped(self):
        policy, repository, link = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        feed_update(policy, repository, make_update(1, object_id=1, cost=0.5, timestamp=2.0))
        outcome = policy.on_query(make_query(2, object_ids=[1], cost=9.0, timestamp=3.0))
        assert outcome.answered_at_cache
        assert outcome.update_shipping_cost == pytest.approx(0.5)
        assert outcome.shipped_updates == [1]
        assert not policy.store.get(1).stale

    def test_expensive_outstanding_updates_cause_query_shipping(self):
        policy, repository, _ = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        feed_update(policy, repository, make_update(1, object_id=1, cost=40.0, timestamp=2.0))
        outcome = policy.on_query(make_query(2, object_ids=[1], cost=2.0, timestamp=3.0))
        assert not outcome.answered_at_cache
        assert outcome.query_shipping_cost == pytest.approx(2.0)
        assert outcome.update_shipping_cost == pytest.approx(0.0)
        # The update stays outstanding; the cached copy remains stale.
        assert policy.store.get(1).stale

    def test_accumulated_queries_eventually_ship_expensive_update(self):
        policy, repository, _ = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        feed_update(policy, repository, make_update(1, object_id=1, cost=10.0, timestamp=2.0))
        shipped_at = None
        for step in range(3, 10):
            outcome = policy.on_query(make_query(step, object_ids=[1], cost=4.0, timestamp=float(step)))
            if outcome.shipped_updates:
                shipped_at = step
                break
        assert shipped_at is not None
        assert not policy.store.get(1).stale

    def test_tolerant_query_ignores_recent_updates(self):
        policy, repository, link = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        feed_update(policy, repository, make_update(1, object_id=1, cost=5.0, timestamp=99.0))
        before = link.total_cost
        outcome = policy.on_query(
            make_query(2, object_ids=[1], cost=9.0, timestamp=100.0, tolerance=10.0)
        )
        assert outcome.answered_at_cache
        assert link.total_cost == pytest.approx(before)
        # The object is still stale: the update was skipped, not shipped.
        assert policy.store.get(1).stale

    def test_currency_invariant_never_violated(self):
        """Every cache answer reflects all updates outside the tolerance window."""
        policy, repository, _ = make_vcover()
        policy.on_query(make_query(1, object_ids=[1, 2], cost=80.0, timestamp=1.0))
        for step in range(2, 30):
            update = make_update(step, object_id=1 + step % 2, cost=1.0, timestamp=float(step))
            feed_update(policy, repository, update)
            query = make_query(100 + step, object_ids=[1, 2], cost=3.0, timestamp=float(step) + 0.5)
            outcome = policy.on_query(query)
            if outcome.answered_at_cache:
                for object_id in query.object_ids:
                    assert policy.interacting_updates(query, object_id) == []


class TestAccountingIdentity:
    def test_link_total_equals_sum_of_outcome_costs(self):
        policy, repository, link = make_vcover()
        total_from_outcomes = 0.0
        events = [
            make_query(1, object_ids=[1, 2], cost=45.0, timestamp=1.0),
            make_update(1, object_id=1, cost=2.0, timestamp=2.0),
            make_query(2, object_ids=[1, 2], cost=6.0, timestamp=3.0),
            make_update(2, object_id=2, cost=3.0, timestamp=4.0),
            make_query(3, object_ids=[1], cost=4.0, timestamp=5.0),
            make_query(4, object_ids=[3, 4], cost=70.0, timestamp=6.0),
            make_query(5, object_ids=[1, 2, 3], cost=8.0, timestamp=7.0),
        ]
        for event in events:
            if hasattr(event, "query_id"):
                total_from_outcomes += policy.on_query(event).total_cost
            else:
                feed_update(policy, repository, event)
        assert link.total_cost == pytest.approx(total_from_outcomes)

    def test_stats_aggregate_manager_counters(self):
        policy, _, _ = make_vcover()
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        stats = policy.stats()
        assert "update_manager_decisions" in stats
        assert "load_manager_invocations" in stats

    def test_flow_method_dinic_behaves_identically(self):
        trace = [
            make_query(1, object_ids=[1], cost=50.0, timestamp=1.0),
            make_update(1, object_id=1, cost=3.0, timestamp=2.0),
            make_query(2, object_ids=[1], cost=6.0, timestamp=3.0),
            make_update(2, object_id=1, cost=9.0, timestamp=4.0),
            make_query(3, object_ids=[1], cost=2.0, timestamp=5.0),
        ]
        totals = []
        for method in ("edmonds-karp", "dinic"):
            policy, repository, link = make_vcover(flow_method=method)
            for event in trace:
                if hasattr(event, "query_id"):
                    policy.on_query(event)
                else:
                    feed_update(policy, repository, event)
            totals.append(link.total_cost)
        assert totals[0] == pytest.approx(totals[1])
