"""Sim-vs-served equivalence: byte-identical decisions, identical counters.

The tentpole guarantee of ``repro.serve``: for any online policy, replaying
a trace through the simulation engine and serving the same trace over TCP
(with any number of concurrent clients) produce the **same decision
sequence, byte for byte**, and the same traffic accounting.
"""

from __future__ import annotations

import json

import pytest

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig, build_scenario_stream
from repro.serve.equivalence import logs_identical, replay_with_log, serve_with_log
from repro.serve.harness import SERVABLE_POLICIES
from repro.sim.runner import default_policy_specs


def build_case(policy: str, **overrides):
    base = dict(object_count=20, query_count=120, update_count=120)
    base.update(overrides)
    config = ExperimentConfig().scaled(**base)
    catalog, trace = build_scenario_stream(config)
    spec = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=(policy,),
    )[0]
    return config, catalog, trace, spec, catalog.total_size * config.cache_fraction


@pytest.mark.parametrize("policy", SERVABLE_POLICIES)
class TestSimVsServed:
    def test_decision_logs_byte_identical(self, policy):
        config, catalog, trace, spec, capacity = build_case(policy)
        result, sim_log = replay_with_log(spec, catalog, trace, capacity)
        # Fresh catalogue + trace: the served run must not share any state
        # with the replay run for the comparison to mean anything.
        _, catalog2, trace2, spec2, _ = build_case(policy)
        stats, served_log = serve_with_log(spec2, catalog2, trace2, capacity, clients=3)

        assert logs_identical(sim_log, served_log)
        assert json.dumps(sim_log) == json.dumps(served_log)
        assert len(sim_log) == 240

    def test_traffic_counters_identical(self, policy):
        config, catalog, trace, spec, capacity = build_case(policy)
        result, _ = replay_with_log(spec, catalog, trace, capacity)
        _, catalog2, trace2, spec2, _ = build_case(policy)
        stats, _ = serve_with_log(spec2, catalog2, trace2, capacity, clients=2)

        assert stats["total_traffic"] == pytest.approx(result.total_traffic, abs=1e-9)
        assert stats["queries_answered_at_cache"] == result.queries_answered_at_cache
        assert stats["events_processed"] == 240
        for mechanism, cost in stats["traffic_by_mechanism"].items():
            assert cost == pytest.approx(
                result.traffic_by_mechanism.get(mechanism, 0.0), abs=1e-9
            )


class TestClientCountInvariance:
    def test_served_log_independent_of_client_count(self):
        logs = {}
        for clients in (1, 2, 5):
            _, catalog, trace, spec, capacity = build_case("vcover")
            _, served_log = serve_with_log(
                spec, catalog, trace, capacity, clients=clients
            )
            logs[clients] = served_log
        assert logs[1] == logs[2] == logs[5]


class TestWorkloadModels:
    @pytest.mark.parametrize("model", ["flash_crowd", "update_storm"])
    def test_equivalence_holds_on_adversarial_models(self, model):
        _, catalog, trace, spec, capacity = build_case(
            "vcover", workload_model=model
        )
        _, sim_log = replay_with_log(spec, catalog, trace, capacity)
        _, catalog2, trace2, spec2, _ = build_case("vcover", workload_model=model)
        _, served_log = serve_with_log(spec2, catalog2, trace2, capacity, clients=4)
        assert logs_identical(sim_log, served_log)
