"""Tests for the eviction policies: GDS, LRU, LFU and Landlord."""

from __future__ import annotations

import pytest

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError, registry
from repro.cache.gds import GreedyDualSize
from repro.cache.landlord import Landlord
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy


class TestGreedyDualSize:
    def test_victim_is_lowest_cost_density(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)   # density 1.0
        gds.on_load(2, size=10.0, cost=50.0, timestamp=0.0)   # density 5.0
        assert gds.victim({1, 2}) == 1

    def test_hit_refreshes_credit_with_inflation(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        gds.on_load(2, size=10.0, cost=10.0, timestamp=0.0)
        # Evict 1; inflation rises to its credit.
        victim = gds.victim({1, 2})
        gds.on_evict(victim)
        survivor = 2 if victim == 1 else 1
        gds.on_load(3, size=10.0, cost=10.0, timestamp=1.0)
        # Object 3 was loaded after inflation rose, so the old survivor
        # (not refreshed since) is the next victim.
        assert gds.victim({survivor, 3}) == survivor
        gds.on_hit(survivor, timestamp=2.0)
        assert gds.victim({survivor, 3}) == 3 or gds.priority(survivor) >= gds.priority(3)

    def test_stale_heap_fallback_tie_breaks_on_object_id(self):
        # Regression (caught by lint rule DET003): the linear-scan fallback
        # used to iterate the resident *set*, so equal-credit ties were
        # broken by set order -- nondeterministic across processes.  The
        # scan now visits ids in sorted order, making the lowest id win.
        gds = GreedyDualSize()
        for object_id in (5, 3, 9, 1):
            gds.on_load(object_id, size=10.0, cost=10.0, timestamp=0.0)
        gds._heap.clear()  # force the heap-exhausted linear-scan path
        assert gds.victim({9, 5, 3, 1}) == 1

    def test_eviction_raises_inflation_monotonically(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        gds.on_evict(1)
        first = gds.inflation
        gds.on_load(2, size=5.0, cost=50.0, timestamp=0.0)
        gds.on_evict(2)
        assert gds.inflation >= first

    def test_boost_cost_increases_priority(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        before = gds.priority(1)
        gds.boost_cost(1, 40.0)
        assert gds.priority(1) > before

    def test_boost_cost_unknown_object_raises(self):
        gds = GreedyDualSize()
        with pytest.raises(KeyError):
            gds.boost_cost(1, 5.0)

    def test_hit_on_unknown_object_raises(self):
        gds = GreedyDualSize()
        with pytest.raises(KeyError):
            gds.on_hit(1, timestamp=0.0)

    def test_zero_size_rejected(self):
        gds = GreedyDualSize()
        with pytest.raises(ValueError):
            gds.on_load(1, size=0.0, cost=1.0, timestamp=0.0)

    def test_victim_of_empty_set_is_none(self):
        gds = GreedyDualSize()
        assert gds.victim(set()) is None

    def test_victim_ignores_non_resident_candidates(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        gds.on_load(2, size=10.0, cost=99.0, timestamp=0.0)
        # Only object 2 is offered as resident.
        assert gds.victim({2}) == 2

    def test_reset_clears_state(self):
        gds = GreedyDualSize()
        gds.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        gds.reset()
        assert gds.tracked_ids() == []
        assert gds.inflation == 0.0


class TestLRU:
    def test_victim_is_least_recently_used(self):
        lru = LRUPolicy()
        lru.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lru.on_load(2, size=1.0, cost=1.0, timestamp=2.0)
        lru.on_hit(1, timestamp=3.0)
        assert lru.victim({1, 2}) == 2

    def test_hit_unknown_raises(self):
        lru = LRUPolicy()
        with pytest.raises(KeyError):
            lru.on_hit(7, timestamp=0.0)

    def test_evict_then_victim_skips_object(self):
        lru = LRUPolicy()
        lru.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lru.on_load(2, size=1.0, cost=1.0, timestamp=2.0)
        lru.on_evict(1)
        assert lru.victim({2}) == 2

    def test_reset(self):
        lru = LRUPolicy()
        lru.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lru.reset()
        assert lru.victim({1}) is None


class TestLFU:
    def test_victim_is_least_frequently_used(self):
        lfu = LFUPolicy()
        lfu.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lfu.on_load(2, size=1.0, cost=1.0, timestamp=2.0)
        lfu.on_hit(1, timestamp=3.0)
        lfu.on_hit(1, timestamp=4.0)
        lfu.on_hit(2, timestamp=5.0)
        assert lfu.victim({1, 2}) == 2

    def test_frequency_ties_break_by_recency(self):
        lfu = LFUPolicy()
        lfu.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lfu.on_load(2, size=1.0, cost=1.0, timestamp=2.0)
        lfu.on_hit(1, timestamp=3.0)
        lfu.on_hit(2, timestamp=4.0)
        assert lfu.victim({1, 2}) == 1

    def test_priority_reports_count(self):
        lfu = LFUPolicy()
        lfu.on_load(1, size=1.0, cost=1.0, timestamp=1.0)
        lfu.on_hit(1, timestamp=2.0)
        assert lfu.priority(1) == pytest.approx(1.0)


class TestLandlord:
    def test_victim_is_lowest_credit_per_size(self):
        landlord = Landlord()
        landlord.on_load(1, size=10.0, cost=5.0, timestamp=0.0)
        landlord.on_load(2, size=10.0, cost=50.0, timestamp=0.0)
        assert landlord.victim({1, 2}) == 1

    def test_rent_charging_is_monotone(self):
        landlord = Landlord()
        landlord.on_load(1, size=10.0, cost=5.0, timestamp=0.0)
        landlord.on_load(2, size=10.0, cost=50.0, timestamp=0.0)
        victim = landlord.victim({1, 2})
        landlord.on_evict(victim)
        # After charging rent, the survivor's effective credit dropped but
        # remains non-negative.
        survivor = 2 if victim == 1 else 1
        assert landlord.priority(survivor) >= -1e-9

    def test_hit_restores_credit(self):
        landlord = Landlord()
        landlord.on_load(1, size=10.0, cost=5.0, timestamp=0.0)
        landlord.on_load(2, size=10.0, cost=50.0, timestamp=0.0)
        landlord.victim({1, 2})  # charges rent
        before = landlord.priority(2)
        landlord.on_hit(2, timestamp=1.0)
        assert landlord.priority(2) >= before

    def test_invalid_refresh_fraction(self):
        with pytest.raises(ValueError):
            Landlord(refresh_fraction=1.5)

    def test_boost_cost(self):
        landlord = Landlord()
        landlord.on_load(1, size=10.0, cost=5.0, timestamp=0.0)
        before = landlord.priority(1)
        landlord.boost_cost(1, 20.0)
        assert landlord.priority(1) > before


class TestRegistry:
    @pytest.mark.parametrize("name", ["gds", "lru", "lfu", "landlord"])
    def test_registered_policies_instantiate(self, name):
        policy = registry.create(name)
        policy.on_load(1, size=2.0, cost=2.0, timestamp=0.0)
        assert policy.victim({1}) == 1

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            registry.create("not-a-policy")

    def test_names_listed(self):
        assert {"gds", "lru", "lfu", "landlord"} <= set(registry.names())


class TestPriorityContract:
    """``priority`` is implemented by all four policies with one error type."""

    @pytest.mark.parametrize("name", ["gds", "lru", "lfu", "landlord"])
    def test_tracked_object_has_float_priority(self, name):
        policy = registry.create(name)
        policy.on_load(1, size=2.0, cost=4.0, timestamp=0.5)
        assert isinstance(policy.priority(1), float)

    @pytest.mark.parametrize("name", ["gds", "lru", "lfu", "landlord"])
    def test_untracked_object_raises_introspection_error(self, name):
        policy = registry.create(name)
        policy.on_load(1, size=2.0, cost=4.0, timestamp=0.5)
        with pytest.raises(PolicyIntrospectionError):
            policy.priority(99)

    @pytest.mark.parametrize("name", ["gds", "lru", "lfu", "landlord"])
    def test_evicted_object_is_forgotten(self, name):
        policy = registry.create(name)
        policy.on_load(1, size=2.0, cost=4.0, timestamp=0.5)
        policy.on_evict(1)
        with pytest.raises(PolicyIntrospectionError):
            policy.priority(1)

    def test_error_is_a_key_error(self):
        # Existing ``except KeyError`` call sites must keep working.
        assert issubclass(PolicyIntrospectionError, KeyError)

    def test_base_default_raises_introspection_error(self):
        class Opaque(EvictionPolicy):
            def on_load(self, object_id, size, cost, timestamp):
                pass

            def on_hit(self, object_id, timestamp):
                pass

            def on_evict(self, object_id):
                pass

            def victim(self, resident):
                return None

        with pytest.raises(PolicyIntrospectionError):
            Opaque().priority(1)
