"""Tests for the repro.bench subsystem: runner, schema, comparison, CLI."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_ID,
    SCHEMA_V1,
    SUITES,
    BenchCase,
    BenchSchemaError,
    compare_payloads,
    get_suite,
    run_suite,
    validate_payload,
)
from repro.bench.runner import load_payload, write_payload
from repro.cli import main

#: A deliberately tiny case so the whole module stays fast.
TINY_CASES = (
    BenchCase(
        name="tiny",
        description="tiny scenario for tests",
        overrides=(("object_count", 12), ("query_count", 60), ("update_count", 60)),
        policies=("nocache", "vcover"),
    ),
    BenchCase(
        name="tiny-multisite",
        description="tiny two-site scenario for tests",
        overrides=(("object_count", 12), ("query_count", 40), ("update_count", 40)),
        policies=("vcover",),
        sites=2,
    ),
)


@pytest.fixture(scope="module")
def payload():
    return run_suite(TINY_CASES)


def downgraded_to_v1(payload):
    """A deep copy of ``payload`` re-declared as v1.

    Genuine v1 payloads predate the per-case ``phases`` block, so the
    downgrade strips it -- leaving it in place would (correctly) trip the
    v2-only check before whatever a test actually targets.
    """
    legacy = copy.deepcopy(payload)
    legacy["schema"] = SCHEMA_V1
    for case in legacy["cases"]:
        case.pop("phases", None)
    return legacy


class TestRunSuite:
    def test_payload_is_schema_valid(self, payload):
        validate_payload(payload)  # raises on failure

    def test_per_policy_breakdown(self, payload):
        by_name = {case["name"]: case for case in payload["cases"]}
        assert set(by_name) == {"tiny", "tiny-multisite"}
        tiny = by_name["tiny"]
        assert [row["policy"] for row in tiny["policies"]] == ["nocache", "vcover"]
        for row in tiny["policies"]:
            assert row["wall_clock_s"] > 0
            assert row["events"] == 120
            assert row["events_per_s"] > 0
            assert row["total_traffic_mb"] > 0

    def test_totals_aggregate_cases(self, payload):
        totals = payload["totals"]
        assert totals["policy_runs"] == 3
        assert totals["events"] == 120 * 2 + 80
        assert totals["wall_clock_s"] == pytest.approx(
            sum(case["wall_clock_s"] for case in payload["cases"])
        )

    def test_environment_stamp(self, payload):
        assert payload["schema"] == SCHEMA_ID
        assert payload["peak_rss_mb"] > 0
        assert payload["jobs"] == 1
        assert isinstance(payload["python"], str)

    def test_lint_clean_recorded(self, payload):
        # In this source checkout the linter runs for real, so the stamp
        # must be a definite verdict (and a clean tree at HEAD says True).
        assert payload["lint_clean"] is True

    def test_jobs_fan_out_produces_same_shape(self):
        parallel = run_suite(TINY_CASES, jobs=2)
        validate_payload(parallel)
        assert [case["name"] for case in parallel["cases"]] == [
            case.name for case in TINY_CASES
        ]

    def test_unknown_suite_name(self):
        with pytest.raises(KeyError, match="unknown bench suite"):
            run_suite("warp-speed")

    def test_named_suites_are_wellformed(self):
        for name in SUITES:
            cases = get_suite(name)
            assert cases, name
            assert len({case.name for case in cases}) == len(cases)

    def test_stress_suite_streams_scenario_models(self):
        cases = get_suite("stress")
        assert all(case.streaming for case in cases)
        models = [dict(case.overrides)["workload_model"] for case in cases]
        assert set(models) == {"flash_crowd", "cache_adversary"}
        # The RSS baseline case must run before the 5M-event case: per-case
        # peak RSS is a process-wide high-water mark.
        names = [case.name for case in cases]
        assert names.index("flash-crowd-500k") < names.index("flash-crowd-5m")

    def test_streaming_case_matches_materialised_results(self):
        shared = dict(
            description="streaming equivalence probe",
            overrides=(
                ("workload_model", "flash_crowd"),
                ("object_count", 12),
                ("query_count", 60),
                ("update_count", 60),
            ),
            policies=("nocache", "vcover"),
        )
        payload = run_suite(
            (
                BenchCase(name="probe-streamed", streaming=True, **shared),
                BenchCase(name="probe-materialised", **shared),
            )
        )
        validate_payload(payload)
        streamed, materialised = payload["cases"]
        assert streamed["streaming"] is True
        assert materialised["streaming"] is False
        for left, right in zip(streamed["policies"], materialised["policies"], strict=True):
            assert left["policy"] == right["policy"]
            assert left["total_traffic_mb"] == right["total_traffic_mb"]
            assert (
                left["queries_answered_at_cache"] == right["queries_answered_at_cache"]
            )


class TestPayloadRoundTrip:
    def test_write_then_load(self, payload, tmp_path):
        path = write_payload(payload, tmp_path / "bench.json")
        loaded = load_payload(path)
        assert loaded == json.loads(json.dumps(payload))

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"schema": SCHEMA_ID}), encoding="utf-8")
        with pytest.raises(BenchSchemaError):
            load_payload(path)


class TestSchemaValidation:
    def test_rejects_wrong_schema_id(self, payload):
        broken = copy.deepcopy(payload)
        broken["schema"] = "repro.bench/v0"
        with pytest.raises(BenchSchemaError, match="payload.schema"):
            validate_payload(broken)

    def test_rejects_missing_case_field(self, payload):
        broken = copy.deepcopy(payload)
        del broken["cases"][0]["wall_clock_s"]
        with pytest.raises(BenchSchemaError, match="wall_clock_s"):
            validate_payload(broken)

    def test_rejects_wrong_type(self, payload):
        broken = copy.deepcopy(payload)
        broken["cases"][0]["policies"][0]["events"] = "many"
        with pytest.raises(BenchSchemaError, match="events"):
            validate_payload(broken)

    def test_lint_clean_is_optional_but_typed(self, payload):
        # Payloads recorded before the linter existed have no lint_clean;
        # they must keep validating (the committed baseline is one).
        legacy = copy.deepcopy(payload)
        legacy.pop("lint_clean", None)
        validate_payload(legacy)
        broken = copy.deepcopy(payload)
        broken["lint_clean"] = "yes"
        with pytest.raises(BenchSchemaError, match="lint_clean"):
            validate_payload(broken)

    def test_rejects_duplicate_case_names(self, payload):
        broken = copy.deepcopy(payload)
        broken["cases"].append(copy.deepcopy(broken["cases"][0]))
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_payload(broken)

    def test_rejects_empty_cases(self, payload):
        broken = copy.deepcopy(payload)
        broken["cases"] = []
        with pytest.raises(BenchSchemaError, match="must not be empty"):
            validate_payload(broken)


class TestSchemaVersions:
    """v2 is a strict superset of v1: old payloads must keep validating."""

    def test_v1_payload_still_validates(self, payload):
        legacy = downgraded_to_v1(payload)
        validate_payload(legacy)

    def test_committed_baseline_validates_as_current_schema(self):
        # The committed baseline carries v2-only blocks (per-policy regret
        # for the adaptive case), so it must declare the current schema.
        root = Path(__file__).parent.parent
        baseline = load_payload(
            root / "benchmarks" / "baselines" / "BENCH_baseline.json"
        )
        assert baseline["schema"] == SCHEMA_ID
        validate_payload(baseline)

    def test_v2_accepts_optional_latency_block(self, payload):
        current = copy.deepcopy(payload)
        current["cases"][0]["policies"][0]["latency"] = {
            "count": 100,
            "mean": 0.002,
            "p50": 0.001,
            "p99": 0.01,
            "p999": 0.02,
            "max": 0.05,
            "predicted_p50": 0.004,  # extra keys tolerated
        }
        validate_payload(current)

    def test_v1_payload_with_latency_rejected(self, payload):
        legacy = downgraded_to_v1(payload)
        legacy["cases"][0]["policies"][0]["latency"] = {
            "count": 1, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0,
        }
        with pytest.raises(BenchSchemaError, match="latency fields require"):
            validate_payload(legacy)

    def test_malformed_latency_block_rejected(self, payload):
        current = copy.deepcopy(payload)
        current["cases"][0]["policies"][0]["latency"] = {"p50": 0.001}
        with pytest.raises(BenchSchemaError, match="latency"):
            validate_payload(current)

    def test_latency_count_must_be_int(self, payload):
        current = copy.deepcopy(payload)
        current["cases"][0]["policies"][0]["latency"] = {
            "count": True, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0,
        }
        with pytest.raises(BenchSchemaError, match="count"):
            validate_payload(current)

    def test_phases_block_present_and_valid(self, payload):
        from repro.bench.runner import PHASE_KEYS
        from repro.bench.schema import PHASE_NAMES

        assert PHASE_KEYS == PHASE_NAMES
        for case in payload["cases"]:
            phases = case["phases"]
            assert set(phases) == set(PHASE_NAMES)
            assert all(value >= 0 for value in phases.values())
            # The breakdown partitions the case wall-clock (trace_compile is
            # extra, outside the timed replay).
            replay = sum(value for key, value in phases.items() if key != "trace_compile")
            assert replay == pytest.approx(case["wall_clock_s"], abs=1e-6)

    def test_v1_payload_with_phases_rejected(self, payload):
        legacy = copy.deepcopy(payload)
        legacy["schema"] = SCHEMA_V1
        with pytest.raises(BenchSchemaError, match="phase breakdowns require"):
            validate_payload(legacy)

    def test_unknown_phase_name_rejected(self, payload):
        current = copy.deepcopy(payload)
        current["cases"][0]["phases"]["gc_pause"] = 0.001
        with pytest.raises(BenchSchemaError, match="unknown phase"):
            validate_payload(current)

    def test_missing_phase_name_rejected(self, payload):
        current = copy.deepcopy(payload)
        del current["cases"][0]["phases"]["cover_solve"]
        with pytest.raises(BenchSchemaError, match="missing required phase"):
            validate_payload(current)

    def test_negative_phase_time_rejected(self, payload):
        current = copy.deepcopy(payload)
        current["cases"][0]["phases"]["metrics"] = -0.5
        with pytest.raises(BenchSchemaError, match="negative phase time"):
            validate_payload(current)

    def test_payload_without_phases_still_validates(self, payload):
        # The committed v2 baseline may predate the phase breakdown; the
        # block is optional in v2.
        current = copy.deepcopy(payload)
        for case in current["cases"]:
            case.pop("phases", None)
        validate_payload(current)

    def test_v2_payload_compares_against_v1_baseline(self, payload):
        # Old checkouts may still carry a v1 baseline; mixed schema
        # versions must compare cleanly.
        baseline = downgraded_to_v1(payload)
        report = compare_payloads(payload, baseline, tolerance=0.15)
        assert report.ok


def slowed(payload, factor):
    slower = copy.deepcopy(payload)
    for case in slower["cases"]:
        for row in case["policies"]:
            row["wall_clock_s"] = row["wall_clock_s"] * factor
    return slower


class TestCompare:
    def test_identical_payloads_pass(self, payload):
        report = compare_payloads(payload, payload, tolerance=0.15)
        assert report.ok
        assert all(row.ratio == pytest.approx(1.0) for row in report.rows)

    def test_slowdown_beyond_tolerance_regresses(self, payload):
        report = compare_payloads(slowed(payload, 2.0), payload, tolerance=0.15)
        assert not report.ok
        assert {(row.case, row.policy) for row in report.regressions} == {
            ("tiny", "nocache"),
            ("tiny", "vcover"),
            ("tiny-multisite", "vcover"),
        }

    def test_slowdown_within_tolerance_passes(self, payload):
        report = compare_payloads(slowed(payload, 1.1), payload, tolerance=0.15)
        assert report.ok

    def test_speedup_never_regresses(self, payload):
        report = compare_payloads(slowed(payload, 0.5), payload, tolerance=0.0)
        assert report.ok

    def test_new_coverage_is_reported_not_failed(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["cases"] = baseline["cases"][:1]
        report = compare_payloads(payload, baseline, tolerance=0.15)
        assert report.ok
        assert report.only_in_current == [("tiny-multisite", "vcover")]

    def test_shrunk_coverage_fails_the_gate(self, payload):
        # A baseline row the current payload no longer measures means a case
        # or policy was renamed/dropped without refreshing the baseline; the
        # gate must fail rather than silently stop measuring it.
        current = copy.deepcopy(payload)
        current["cases"] = current["cases"][:1]
        report = compare_payloads(current, payload, tolerance=0.15)
        assert not report.ok
        assert report.only_in_baseline == [("tiny-multisite", "vcover")]
        assert "coverage shrank" in report.format()

    def test_negative_tolerance_rejected(self, payload):
        with pytest.raises(ValueError, match="tolerance"):
            compare_payloads(payload, payload, tolerance=-0.1)

    def test_zero_overlap_is_an_error_not_a_pass(self, payload):
        # A stale baseline whose case names no longer match the suite must
        # fail loudly (CLI exit 2), not compare zero rows and exit 0.
        renamed = copy.deepcopy(payload)
        for case in renamed["cases"]:
            case["name"] = case["name"] + "-v2"
        with pytest.raises(BenchSchemaError, match="no \\(case, policy\\) rows"):
            compare_payloads(renamed, payload, tolerance=0.15)

    def test_format_mentions_verdicts(self, payload):
        report = compare_payloads(slowed(payload, 2.0), payload, tolerance=0.15)
        text = report.format()
        assert "REGRESSED" in text
        assert "regression(s) beyond +15% tolerance" in text


class TestBenchCli:
    @pytest.fixture(scope="class")
    def payload_file(self, payload, tmp_path_factory):
        return str(write_payload(payload, tmp_path_factory.mktemp("bench") / "current.json"))

    def test_list_exits_zero(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "quick:" in out and "full:" in out

    def test_input_without_compare(self, payload_file, capsys):
        assert main(["bench", "--input", payload_file]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_compare_identical_exits_zero(self, payload_file):
        assert main(["bench", "--input", payload_file, "--compare", payload_file]) == 0

    def test_compare_regression_exits_three(self, payload, payload_file, tmp_path):
        fast = write_payload(slowed(payload, 0.25), tmp_path / "fast-baseline.json")
        assert (
            main(["bench", "--input", payload_file, "--compare", str(fast)]) == 3
        )

    def test_missing_input_exits_two(self, tmp_path):
        assert main(["bench", "--input", str(tmp_path / "absent.json")]) == 2

    def test_invalid_baseline_exits_two(self, payload_file, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["bench", "--input", payload_file, "--compare", str(bad)]) == 2

    def test_out_writes_payload(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        tiny = TINY_CASES[:1]
        # Drive run_suite through the API rather than the CLI (the CLI only
        # exposes the named suites); then confirm the CLI reads it back.
        write_payload(run_suite(tiny), target)
        assert main(["bench", "--input", str(target)]) == 0
        assert "tiny" in capsys.readouterr().out


def test_committed_ci_baseline_matches_quick_suite():
    # The CI bench gate compares (case, policy) rows by name; if the suite
    # and the committed baseline drift apart the comparison degrades, so the
    # full row set is pinned here and any suite change forces a baseline
    # refresh (see docs/benchmarks.md).
    root = Path(__file__).parent.parent
    baseline = load_payload(root / "benchmarks" / "baselines" / "BENCH_baseline.json")
    assert baseline["suite"] == "quick"
    expected_rows = {
        (case.name, policy) for case in get_suite("quick") for policy in case.policies
    }
    baseline_rows = {
        (case["name"], row["policy"])
        for case in baseline["cases"]
        for row in case["policies"]
    }
    assert baseline_rows == expected_rows
