"""Property-based tests for the flow layer (hypothesis).

Three families of invariants, each checked against randomly generated
structures rather than hand-picked examples:

* the max-flow solvers certify themselves: both methods agree, conserve
  flow, and the max-flow value equals the capacity of the residual min cut
  (the LP-duality identity the vertex-cover reduction rests on);
* :func:`repro.flow.vertex_cover.min_weight_vertex_cover` is *exactly*
  optimal: on small random bipartite instances it always returns a valid
  cover whose weight matches the exponential brute-force oracle;
* :class:`repro.core.interaction_graph.InteractionGraph` keeps its incidence
  maps consistent under arbitrary add / advise / drop sequences -- the
  remainder-subgraph pruning of Section 4 must never leave dangling edges or
  stale vertices behind.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.interaction_graph import InteractionGraph
from repro.flow.graph import FlowNetwork
from repro.flow.maxflow import solve_max_flow
from repro.flow.vertex_cover import (
    SINK,
    SOURCE,
    brute_force_min_cover,
    build_cover_network,
    min_weight_vertex_cover,
)
from repro.repository.queries import Query
from repro.repository.updates import Update
from tests.strategies import cover_instances, flow_networks, graph_ops


# ----------------------------------------------------------------------
# Max-flow = min-cut
# ----------------------------------------------------------------------
def _residual_cut_capacity(network: FlowNetwork, source) -> float:
    """Capacity of the cut induced by the residual-reachable source side."""
    reachable = network.residual_reachable(source)
    return sum(
        arc.capacity
        for arc in network.forward_edges()
        if arc.tail in reachable and arc.head not in reachable
    )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=flow_networks())
def test_property_max_flow_equals_min_cut(case):
    """On arbitrary networks the flow value equals the residual cut capacity."""
    network, source, sink = case
    flow = solve_max_flow(network, source, sink, method="edmonds-karp")
    network.check_flow_conservation(source, sink)
    assert flow == pytest.approx(_residual_cut_capacity(network, source))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=flow_networks())
def test_property_solvers_agree(case):
    """Edmonds-Karp, Dinic and push-relabel compute the same max-flow value."""
    network, source, sink = case
    ek = solve_max_flow(network.copy(), source, sink, method="edmonds-karp")
    dinic = solve_max_flow(network.copy(), source, sink, method="dinic")
    push_relabel = solve_max_flow(network.copy(), source, sink, method="push-relabel")
    assert ek == pytest.approx(dinic)
    assert ek == pytest.approx(push_relabel)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=flow_networks())
def test_property_push_relabel_flow_is_valid(case):
    """Push-relabel leaves a conserving flow whose residual cut certifies it.

    The cut check matters beyond the value: cover extraction reads the
    residual-reachable source side, so the flow must be a genuine max flow
    (excess fully drained), not merely a preflow with the right value.
    """
    network, source, sink = case
    flow = solve_max_flow(network, source, sink, method="push-relabel")
    network.check_flow_conservation(source, sink)
    assert flow == pytest.approx(_residual_cut_capacity(network, source))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=flow_networks())
def test_property_solvers_agree_on_residual_cut(case):
    """All solvers induce the same minimal source side of the min cut.

    The minimal source side of a min cut is unique, so the covers extracted
    from the residual graph cannot depend on the solver.
    """
    network, source, sink = case
    ek_network = network.copy()
    pr_network = network.copy()
    solve_max_flow(ek_network, source, sink, method="edmonds-karp")
    solve_max_flow(pr_network, source, sink, method="push-relabel")
    assert ek_network.residual_reachable(source) == pr_network.residual_reachable(
        source
    )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=cover_instances())
def test_property_cover_network_flow_equals_cut(instance):
    """The duality identity holds on the vertex-cover reduction networks too."""
    network = build_cover_network(instance)
    flow = solve_max_flow(network, SOURCE, SINK, method="dinic")
    assert flow == pytest.approx(_residual_cut_capacity(network, SOURCE))


# ----------------------------------------------------------------------
# Vertex cover vs brute force
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    instance=cover_instances(),
    method=st.sampled_from(["edmonds-karp", "dinic", "push-relabel"]),
)
def test_property_vertex_cover_matches_brute_force(instance, method):
    """The flow-based cover is valid and exactly as light as the oracle's."""
    result = min_weight_vertex_cover(instance, method=method)
    oracle = brute_force_min_cover(instance)
    assert result.covers(instance.edges)
    assert result.weight == pytest.approx(oracle.weight)
    # LP duality: the certifying flow carries exactly the cover weight.
    assert result.flow_value == pytest.approx(result.weight)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=cover_instances())
def test_property_cover_contains_no_isolated_vertices(instance):
    """Vertices without incident edges are never charged for."""
    result = min_weight_vertex_cover(instance)
    touched = {left for left, _ in instance.edges} | {
        right for _, right in instance.edges
    }
    assert result.cover <= touched


# ----------------------------------------------------------------------
# InteractionGraph incidence consistency
# ----------------------------------------------------------------------
def _check_incidence_consistency(graph: InteractionGraph) -> None:
    """The incidence maps must stay symmetric and reference only active keys."""
    active_updates = set(graph._active_update_keys.values())
    assert set(graph._edges_by_query) <= graph._active_query_keys
    assert set(graph._edges_by_update) <= active_updates
    for query_key, update_keys in graph._edges_by_query.items():
        assert update_keys, "empty incidence sets must be removed"
        for update_key in update_keys:
            assert query_key in graph._edges_by_update[update_key]
    for update_key, query_keys in graph._edges_by_update.items():
        assert query_keys, "empty incidence sets must be removed"
        for query_key in query_keys:
            assert update_key in graph._edges_by_query[query_key]
    assert graph.edge_count == sum(
        len(keys) for keys in graph._edges_by_update.values()
    )
    # The exported instance must be self-consistent (its validator checks
    # every edge endpoint has a weight).
    graph.to_instance()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=graph_ops)
def test_property_interaction_graph_incidence_consistency(ops):
    """Arbitrary add/advise/drop sequences never corrupt the remainder graph."""
    graph = InteractionGraph()
    outstanding: dict[int, Update] = {}
    next_id = 0
    for kind, cost, picks in ops:
        next_id += 1
        if kind == "update":
            update = Update(
                update_id=next_id, object_id=1, cost=cost, timestamp=float(next_id)
            )
            graph.add_update(update)
            outstanding[next_id] = update
        elif kind == "query":
            query = Query(
                query_id=next_id,
                object_ids=frozenset({1}),
                cost=cost,
                timestamp=float(next_id),
            )
            graph.add_query(query)
            candidates = sorted(outstanding)
            for pick in picks:
                if candidates:
                    graph.add_interaction(
                        query, outstanding[candidates[pick % len(candidates)]]
                    )
            advice = graph.advise(query)
            for update_id in advice.ship_updates:
                outstanding.pop(update_id, None)
        else:  # drop
            candidates = sorted(outstanding)
            dropped = {
                candidates[pick % len(candidates)] for pick in picks if candidates
            }
            graph.drop_updates(dropped)
            for update_id in dropped:
                outstanding.pop(update_id, None)
        _check_incidence_consistency(graph)
        assert graph.active_update_ids() == frozenset(outstanding)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=graph_ops)
def test_property_interaction_graph_advice_covers_interactions(ops):
    """Advice is a cover: a kept query never leaves an interaction unpaid."""
    graph = InteractionGraph()
    outstanding: dict[int, Update] = {}
    next_id = 0
    for kind, cost, picks in ops:
        next_id += 1
        if kind == "update":
            update = Update(
                update_id=next_id, object_id=1, cost=cost, timestamp=float(next_id)
            )
            graph.add_update(update)
            outstanding[next_id] = update
        elif kind == "query":
            query = Query(
                query_id=next_id,
                object_ids=frozenset({1}),
                cost=cost,
                timestamp=float(next_id),
            )
            graph.add_query(query)
            candidates = sorted(outstanding)
            interacting = set()
            for pick in picks:
                if candidates:
                    chosen = candidates[pick % len(candidates)]
                    graph.add_interaction(query, outstanding[chosen])
                    interacting.add(chosen)
            advice = graph.advise(query)
            if not advice.ship_query:
                # Keeping the query at the cache requires every update it
                # interacts with to be shipped by this or an earlier cover.
                assert interacting <= set(advice.ship_updates)
            for update_id in advice.ship_updates:
                outstanding.pop(update_id, None)
        else:
            candidates = sorted(outstanding)
            dropped = {
                candidates[pick % len(candidates)] for pick in picks if candidates
            }
            graph.drop_updates(dropped)
            for update_id in dropped:
                outstanding.pop(update_id, None)
