"""Tests for minimum-weight vertex cover on bipartite graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.vertex_cover import (
    BipartiteCoverInstance,
    brute_force_min_cover,
    min_weight_vertex_cover,
)


def make_instance(left, right, edges) -> BipartiteCoverInstance:
    return BipartiteCoverInstance.from_iterables(left, right, edges)


class TestValidation:
    def test_edge_endpoint_must_have_weight(self):
        with pytest.raises(ValueError):
            make_instance({"q1": 1.0}, {"u1": 1.0}, [("q1", "u2")])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_instance({"q1": -1.0}, {}, [])


class TestSmallInstances:
    def test_single_edge_picks_cheaper_side(self):
        instance = make_instance({"q": 10.0}, {"u": 3.0}, [("q", "u")])
        result = min_weight_vertex_cover(instance)
        assert result.right_in_cover == frozenset({"u"})
        assert result.left_in_cover == frozenset()
        assert result.weight == pytest.approx(3.0)

    def test_single_edge_picks_query_when_cheaper(self):
        instance = make_instance({"q": 2.0}, {"u": 3.0}, [("q", "u")])
        result = min_weight_vertex_cover(instance)
        assert result.left_in_cover == frozenset({"q"})
        assert result.weight == pytest.approx(2.0)

    def test_star_of_updates_covered_by_single_query(self):
        instance = make_instance(
            {"q": 5.0},
            {"u1": 3.0, "u2": 3.0, "u3": 3.0},
            [("q", "u1"), ("q", "u2"), ("q", "u3")],
        )
        result = min_weight_vertex_cover(instance)
        assert result.left_in_cover == frozenset({"q"})
        assert result.weight == pytest.approx(5.0)

    def test_star_of_updates_covered_by_updates_when_query_expensive(self):
        instance = make_instance(
            {"q": 50.0},
            {"u1": 3.0, "u2": 3.0, "u3": 3.0},
            [("q", "u1"), ("q", "u2"), ("q", "u3")],
        )
        result = min_weight_vertex_cover(instance)
        assert result.right_in_cover == frozenset({"u1", "u2", "u3"})
        assert result.weight == pytest.approx(9.0)

    def test_shared_update_between_two_queries(self):
        # One expensive update shared by two cheap queries: ship the queries.
        instance = make_instance(
            {"q1": 2.0, "q2": 2.0},
            {"u": 10.0},
            [("q1", "u"), ("q2", "u")],
        )
        result = min_weight_vertex_cover(instance)
        assert result.left_in_cover == frozenset({"q1", "q2"})
        assert result.weight == pytest.approx(4.0)

    def test_shared_update_covered_once_for_many_queries(self):
        # The same update interacting with many queries is paid only once.
        instance = make_instance(
            {f"q{i}": 4.0 for i in range(5)},
            {"u": 10.0},
            [(f"q{i}", "u") for i in range(5)],
        )
        result = min_weight_vertex_cover(instance)
        assert result.right_in_cover == frozenset({"u"})
        assert result.weight == pytest.approx(10.0)

    def test_isolated_vertices_never_in_cover(self):
        instance = make_instance(
            {"q1": 1.0, "q_isolated": 100.0},
            {"u1": 5.0, "u_isolated": 100.0},
            [("q1", "u1")],
        )
        result = min_weight_vertex_cover(instance)
        assert "q_isolated" not in result.cover
        assert "u_isolated" not in result.cover

    def test_empty_instance(self):
        instance = make_instance({}, {}, [])
        result = min_weight_vertex_cover(instance)
        assert result.weight == pytest.approx(0.0)
        assert result.cover == frozenset()

    def test_cover_weight_equals_flow_value(self):
        instance = make_instance(
            {"q1": 3.0, "q2": 7.0},
            {"u1": 2.0, "u2": 4.0},
            [("q1", "u1"), ("q1", "u2"), ("q2", "u2")],
        )
        result = min_weight_vertex_cover(instance)
        assert result.weight == pytest.approx(result.flow_value)

    def test_result_always_covers_all_edges(self):
        edges = [("q1", "u1"), ("q1", "u2"), ("q2", "u2"), ("q3", "u3")]
        instance = make_instance(
            {"q1": 3.0, "q2": 1.0, "q3": 9.0},
            {"u1": 2.0, "u2": 8.0, "u3": 1.0},
            edges,
        )
        result = min_weight_vertex_cover(instance)
        assert result.covers(edges)

    @pytest.mark.parametrize("method", ["edmonds-karp", "dinic"])
    def test_both_solvers_give_same_weight(self, method):
        instance = make_instance(
            {"q1": 3.0, "q2": 7.0, "q3": 2.0},
            {"u1": 2.0, "u2": 4.0, "u3": 6.0},
            [("q1", "u1"), ("q2", "u2"), ("q3", "u3"), ("q1", "u3"), ("q2", "u1")],
        )
        result = min_weight_vertex_cover(instance, method=method)
        oracle = brute_force_min_cover(instance)
        assert result.weight == pytest.approx(oracle.weight)


def random_instance(seed: int, left_count: int, right_count: int, edge_count: int):
    rng = np.random.default_rng(seed)
    left = {f"q{i}": float(rng.integers(1, 30)) for i in range(left_count)}
    right = {f"u{i}": float(rng.integers(1, 30)) for i in range(right_count)}
    edges = set()
    for _ in range(edge_count):
        edges.add(
            (f"q{int(rng.integers(0, left_count))}", f"u{int(rng.integers(0, right_count))}")
        )
    return make_instance(left, right, edges)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances_match_oracle(self, seed):
        instance = random_instance(seed, left_count=6, right_count=6, edge_count=12)
        result = min_weight_vertex_cover(instance)
        oracle = brute_force_min_cover(instance)
        assert result.weight == pytest.approx(oracle.weight)
        assert result.covers(instance.edges)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    left_count=st.integers(min_value=1, max_value=6),
    right_count=st.integers(min_value=1, max_value=6),
)
def test_property_cover_is_valid_and_optimal(seed, left_count, right_count):
    """The flow-based cover is always a valid cover with the oracle's weight."""
    instance = random_instance(seed, left_count, right_count, edge_count=2 * (left_count + right_count))
    result = min_weight_vertex_cover(instance)
    oracle = brute_force_min_cover(instance)
    assert result.covers(instance.edges)
    assert result.weight == pytest.approx(oracle.weight)
