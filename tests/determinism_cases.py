"""Shared scenario definitions for the determinism harness.

The hot-path optimisations (engine dispatch, warm-started flow structures,
``__slots__`` records, cached interacting-update lookups) are only acceptable
if they change *nothing* about what a run computes.  This module pins down
the scenarios the harness replays and renders their results in a canonical
byte form, so that ``tests/test_determinism.py`` can compare the optimized
engine against payloads recorded from the pre-optimisation seed tree
(``tests/fixtures/determinism/``).

Run ``python tests/generate_determinism_fixtures.py`` to (re)record the
fixtures.  Only do that when a change is *meant* to alter simulation results;
refreshing the fixtures to silence a determinism failure defeats the harness.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint, SweepRunner
from repro.topology.spec import TopologySpec

#: Where the recorded seed payloads live.
FIXTURE_DIR = Path(__file__).parent / "fixtures" / "determinism"

#: The committed sample query log the ingested-scenario fixture calibrates.
SAMPLE_LOG = Path(__file__).parent.parent / "examples" / "logs" / "sdss_day.csv"

#: All five paper policies, in the order the fixtures record them.
POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")

#: Headline-shaped scenario, reduced so the harness stays in the seconds
#: range: the same workload generators and policy set as the headline
#: experiment, with a shorter trace over a smaller sky.
HEADLINE_CONFIG = ExperimentConfig(
    object_count=32,
    query_count=600,
    update_count=600,
    cache_fraction=0.3,
    sample_every=150,
    seed=7,
)

#: Cache fraction of the headline experiment's "one-fifth cache" run.
SMALL_CACHE_FRACTION = 0.2

#: Multisite scenario: two-site fleets sharing one repository.
MULTISITE_CONFIG = ExperimentConfig(
    object_count=32,
    query_count=500,
    update_count=500,
    cache_fraction=0.3,
    sample_every=150,
    seed=11,
)

#: Number of cache sites in the multisite fixture.
MULTISITE_SITES = 2

#: Flash-crowd scenario: the streaming pipeline's determinism anchor.  One
#: fixture pins the payloads; the test replays it both materialised and
#: through the streaming trace pipeline, so the two paths can never drift.
FLASHCROWD_CONFIG = ExperimentConfig(
    object_count=32,
    query_count=600,
    update_count=600,
    cache_fraction=0.3,
    sample_every=150,
    seed=13,
    workload_model="flash_crowd",
    flash_crowd_count=2,
    flash_crowd_arrival=0.25,
    flash_crowd_duration=0.15,
)


#: Adaptive meta-policy scenario: an evolving workload long enough to cross
#: several epoch boundaries (and at least one arm switch), pinning the
#: shadow-scoring, switch accounting and per-epoch regret solves byte-for-byte.
ADAPTIVE_CONFIG = ExperimentConfig(
    object_count=32,
    query_count=900,
    update_count=900,
    cache_fraction=0.3,
    sample_every=300,
    seed=17,
)

#: Policies recorded by the adaptive fixture (the meta-policy plus the two
#: statics it most often shadows into).
ADAPTIVE_POLICIES = ("adaptive", "vcover", "nocache")


def canonical(payload: object) -> str:
    """Render a payload as canonical JSON (the byte form fixtures store)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def headline_payloads(jobs: int = 1) -> Dict[str, Dict[str, object]]:
    """Per-policy ``RunResult`` payloads for both headline cache sizes."""
    spec = ScenarioSpec(HEADLINE_CONFIG, name="determinism-headline")
    payloads: Dict[str, Dict[str, object]] = {}
    for label, fraction in (
        ("small", SMALL_CACHE_FRACTION),
        ("default", HEADLINE_CONFIG.cache_fraction),
    ):
        comparison = api.run_scenario(
            spec, policies=POLICIES, jobs=jobs, cache_fraction=fraction
        )
        payloads[label] = {name: comparison[name].as_payload() for name in POLICIES}
    return payloads


def multisite_payloads(jobs: int = 1) -> Dict[str, object]:
    """Aggregate ``RunResult`` payloads for two-site vcover/nocache fleets."""
    config = MULTISITE_CONFIG
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    specs = default_policy_specs(include=("vcover", "nocache"))
    points = [
        SweepPoint(
            key=f"{spec.name}-x{MULTISITE_SITES}",
            spec=spec,
            engine=engine,
            seed=config.seed,
            topology=TopologySpec.uniform(
                spec, MULTISITE_SITES, cache_fraction=config.cache_fraction
            ),
        )
        for spec in specs
    ]
    scenarios = {DEFAULT_SCENARIO: ScenarioSpec(config, name="determinism-multisite")}
    result = SweepRunner(jobs=jobs).run(points, scenarios)
    return {item.point.key: item.run.as_payload() for item in result.points}


def flashcrowd_payloads(jobs: int = 1, streaming: bool = False) -> Dict[str, object]:
    """Per-policy ``RunResult`` payloads for the flash-crowd scenario.

    ``streaming=True`` replays the lazily-generated stream instead of the
    materialised trace; both must match the same recorded fixture.
    """
    spec = ScenarioSpec(FLASHCROWD_CONFIG, name="determinism-flashcrowd")
    comparison = api.run_scenario(
        spec, policies=POLICIES, jobs=jobs, streaming=streaming
    )
    return {name: comparison[name].as_payload() for name in POLICIES}


def ingested_payloads(jobs: int = 1, streaming: bool = False) -> Dict[str, object]:
    """Per-policy payloads for the scenario calibrated from the sample log.

    The whole ingest pipeline is pinned here: reading the committed CSV,
    fitting the scenario knobs, and replaying the emitted spec.  As with the
    flash-crowd case, one fixture covers both the materialised and the
    streaming replay path.
    """
    from repro.workload.ingest import ingest_scenario

    spec, _ = ingest_scenario(SAMPLE_LOG, name="determinism-ingested")
    spec = spec.scaled(sample_every=200)
    comparison = api.run_scenario(
        spec, policies=POLICIES, jobs=jobs, streaming=streaming
    )
    return {name: comparison[name].as_payload() for name in POLICIES}


def adaptive_payloads(jobs: int = 1, streaming: bool = False) -> Dict[str, object]:
    """Per-policy payloads for the adaptive meta-policy scenario.

    Covers the epoch scoring, the switch bookkeeping and the per-epoch
    regret solves; one fixture pins the materialised and streaming paths.
    """
    spec = ScenarioSpec(ADAPTIVE_CONFIG, name="determinism-adaptive")
    comparison = api.run_scenario(
        spec, policies=ADAPTIVE_POLICIES, jobs=jobs, streaming=streaming
    )
    return {name: comparison[name].as_payload() for name in ADAPTIVE_POLICIES}


#: Fixture name -> capture function, shared by the generator and the tests.
CASES = {
    "headline": headline_payloads,
    "multisite": multisite_payloads,
    "flashcrowd": flashcrowd_payloads,
    "ingested": ingested_payloads,
    "adaptive": adaptive_payloads,
}
