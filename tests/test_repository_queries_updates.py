"""Tests for query and update specifications."""

from __future__ import annotations

import pytest

from repro.repository.queries import Query, QueryIdAllocator, QueryTemplate, total_query_cost
from repro.repository.updates import Update, UpdateIdAllocator, UpdateKind


class TestQuery:
    def test_object_ids_coerced_to_frozenset(self):
        query = Query(query_id=1, object_ids=[1, 2, 2], cost=1.0, timestamp=0.0)
        assert query.object_ids == frozenset({1, 2})

    def test_empty_footprint_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=1, object_ids=frozenset(), cost=1.0, timestamp=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=1, object_ids=frozenset({1}), cost=-1.0, timestamp=0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=1, object_ids=frozenset({1}), cost=1.0, timestamp=0.0, tolerance=-1.0)

    def test_unknown_template_rejected(self):
        with pytest.raises(ValueError):
            Query(
                query_id=1, object_ids=frozenset({1}), cost=1.0, timestamp=0.0,
                template="mystery",
            )

    def test_aliases_match_paper_notation(self):
        query = Query(query_id=1, object_ids=frozenset({1, 2}), cost=7.0, timestamp=3.0)
        assert query.shipping_cost == pytest.approx(7.0)
        assert query.accessed_objects == frozenset({1, 2})
        assert query.touches(1) and not query.touches(9)

    def test_requires_update_with_zero_tolerance(self):
        query = Query(query_id=1, object_ids=frozenset({1}), cost=1.0, timestamp=100.0)
        assert query.requires_update(99.0)
        assert query.requires_update(100.0)

    def test_requires_update_respects_tolerance_window(self):
        query = Query(
            query_id=1, object_ids=frozenset({1}), cost=1.0, timestamp=100.0, tolerance=10.0
        )
        assert query.requires_update(89.0)
        assert query.requires_update(90.0)
        assert not query.requires_update(95.0)
        assert not query.requires_update(100.0)

    def test_infinite_tolerance_never_requires_updates(self):
        query = Query(
            query_id=1, object_ids=frozenset({1}), cost=1.0, timestamp=100.0,
            tolerance=float("inf"),
        )
        assert not query.requires_update(0.0)

    def test_total_query_cost_helper(self):
        queries = [
            Query(query_id=i, object_ids=frozenset({1}), cost=float(i), timestamp=float(i))
            for i in range(1, 5)
        ]
        assert total_query_cost(queries) == pytest.approx(10.0)

    def test_query_id_allocator_is_monotonic(self):
        allocator = QueryIdAllocator(start=5)
        assert [allocator.next_id() for _ in range(3)] == [5, 6, 7]

    def test_templates_enumeration(self):
        assert QueryTemplate.RANGE in QueryTemplate.ALL
        assert len(set(QueryTemplate.ALL)) == len(QueryTemplate.ALL)


class TestUpdate:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Update(update_id=1, object_id=1, cost=-1.0, timestamp=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Update(update_id=1, object_id=1, cost=1.0, timestamp=0.0, kind="truncate")

    def test_shipping_cost_alias(self):
        update = Update(update_id=1, object_id=1, cost=2.5, timestamp=0.0)
        assert update.shipping_cost == pytest.approx(2.5)

    def test_default_kind_is_insert(self):
        update = Update(update_id=1, object_id=1, cost=1.0, timestamp=0.0)
        assert update.kind == UpdateKind.INSERT

    def test_update_id_allocator(self):
        allocator = UpdateIdAllocator()
        assert allocator.next_id() == 0
        assert allocator.next_id() == 1
