"""Tests for the NoCache, Replica and SOptimal yardstick policies."""

from __future__ import annotations

import pytest

from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy, SOptimalPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.workload.trace import QueryEvent, Trace, UpdateEvent
from tests.conftest import make_query, make_update


@pytest.fixture
def catalog():
    return ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0})


def build_trace():
    return Trace(
        [
            QueryEvent(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0)),
            UpdateEvent(make_update(1, object_id=1, cost=2.0, timestamp=2.0)),
            QueryEvent(make_query(2, object_ids=[1], cost=40.0, timestamp=3.0)),
            UpdateEvent(make_update(2, object_id=4, cost=30.0, timestamp=4.0)),
            QueryEvent(make_query(3, object_ids=[2, 3], cost=5.0, timestamp=5.0)),
        ]
    )


class TestNoCache:
    def test_every_query_is_shipped_at_its_cost(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 1000.0, link)
        total = 0.0
        for event in build_trace():
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            else:
                outcome = policy.on_query(event.query)
                assert not outcome.answered_at_cache
                total += event.query.cost
        assert link.total_cost == pytest.approx(total)
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(0.0)
        assert link.total_by_mechanism()["object_loading"] == pytest.approx(0.0)

    def test_never_caches_anything(self, catalog):
        policy = NoCachePolicy(Repository(catalog), 1000.0, NetworkLink())
        assert policy.store.capacity == 0.0


class TestReplica:
    def test_initial_population_is_free(self, catalog):
        link = NetworkLink()
        ReplicaPolicy(Repository(catalog), 0.0, link)
        assert link.total_cost == pytest.approx(0.0)

    def test_every_update_is_shipped_and_queries_are_free(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = ReplicaPolicy(repository, 0.0, link)
        update_total = 0.0
        for event in build_trace():
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
                update_total += event.update.cost
            else:
                outcome = policy.on_query(event.query)
                assert outcome.answered_at_cache
        assert link.total_cost == pytest.approx(update_total)
        assert link.total_by_mechanism()["query_shipping"] == pytest.approx(0.0)

    def test_replica_is_always_fresh(self, catalog):
        repository = Repository(catalog)
        policy = ReplicaPolicy(repository, 0.0, NetworkLink())
        update = make_update(1, object_id=2, cost=3.0, timestamp=1.0)
        repository.ingest_update(update)
        policy.on_update(update)
        assert not policy.store.get(2).stale


class TestSOptimal:
    def test_prepare_chooses_high_benefit_objects(self, catalog):
        repository = Repository(catalog)
        policy = SOptimalPolicy(repository, capacity=35.0, link=NetworkLink())
        policy.prepare(build_trace())
        decision = policy.decision
        assert decision is not None
        # Object 1: 90 of query cost vs 2 update + 10 load -> clearly cached.
        assert decision.caches(1)
        # Object 4: no queries, 30 of updates -> never cached.
        assert not decision.caches(4)

    def test_static_set_respects_capacity(self, catalog):
        repository = Repository(catalog)
        policy = SOptimalPolicy(repository, capacity=15.0, link=NetworkLink())
        policy.prepare(build_trace())
        total_size = sum(catalog.size_of(oid) for oid in policy.decision.cached_objects)
        assert total_size <= 15.0 + 1e-9

    def test_initial_loads_are_charged(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = SOptimalPolicy(repository, capacity=35.0, link=link)
        policy.prepare(build_trace())
        assert link.total_by_mechanism()["object_loading"] > 0.0

    def test_run_answers_covered_queries_and_ships_rest(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = SOptimalPolicy(repository, capacity=35.0, link=link)
        trace = build_trace()
        policy.prepare(trace)
        answered = []
        for event in trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            else:
                answered.append(policy.on_query(event.query).answered_at_cache)
        # Queries 1 and 2 touch only object 1 (cached); query 3 touches 2, 3
        # which exceed the remaining capacity and are shipped.
        assert answered == [True, True, False]

    def test_updates_for_cached_objects_shipped(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = SOptimalPolicy(repository, capacity=35.0, link=link)
        trace = build_trace()
        policy.prepare(trace)
        for event in trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            else:
                policy.on_query(event.query)
        # Update 1 hits cached object 1 (shipped); update 2 hits uncached
        # object 4 (not shipped).
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(2.0)

    def test_without_prepare_everything_is_shipped(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = SOptimalPolicy(repository, capacity=35.0, link=link)
        outcome = policy.on_query(make_query(1, object_ids=[1], cost=5.0, timestamp=1.0))
        assert not outcome.answered_at_cache
