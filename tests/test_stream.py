"""The streaming trace pipeline: contract, mixer and equivalence tests.

The load-bearing claim is byte-identity: replaying a scenario through its
lazily-generated :class:`~repro.workload.trace.TraceStream` must produce
exactly the ``RunResult`` payloads the materialised replay produces, for
every workload model, serial or parallel.  The flash-crowd determinism
fixture pins one of these equalities against bytes on disk
(``tests/test_determinism.py``); this module covers the rest of the matrix
plus the stream contract itself.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import api
from repro.experiments.config import (
    WORKLOAD_MODELS,
    ExperimentConfig,
    build_model_stream,
    build_scenario,
    build_scenario_stream,
)
from repro.experiments.spec import ScenarioSpec
from repro.repository.catalog import sdss_catalog
from repro.workload.mixer import interleave, iter_interleaved
from repro.workload.scenarios import FlashCrowdStream
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.stream import EvolvingTraceStream
from repro.workload.trace import Trace, TraceStream
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig

SMALL = ExperimentConfig(
    object_count=24, query_count=300, update_count=300, sample_every=100, seed=5
)


def small_config(model: str) -> ExperimentConfig:
    return SMALL.scaled(workload_model=model)


def canonical_payloads(comparison, policies) -> str:
    return json.dumps(
        {name: comparison[name].as_payload() for name in policies}, sort_keys=True
    )


# ----------------------------------------------------------------------
# The TraceStream contract
# ----------------------------------------------------------------------
class TestStreamContract:
    @pytest.mark.parametrize("model", WORKLOAD_MODELS)
    def test_streams_are_restartable_and_sized(self, model):
        _, stream = build_scenario_stream(small_config(model))
        assert isinstance(stream, TraceStream)
        assert len(stream) == SMALL.total_events
        first = list(stream.iter_tagged())
        second = list(stream.iter_tagged())
        assert first == second
        assert len(first) == len(stream)

    @pytest.mark.parametrize("model", WORKLOAD_MODELS)
    def test_materialise_matches_build_scenario(self, model):
        config = small_config(model)
        _, stream = build_scenario_stream(config)
        materialised = stream.materialise()
        scenario = build_scenario(config)
        assert isinstance(materialised, Trace)
        assert list(materialised) == list(scenario.trace)

    def test_describe_matches_materialised_describe(self):
        _, stream = build_scenario_stream(small_config("flash_crowd"))
        assert stream.describe() == stream.materialise().describe()

    def test_chunks_partition_the_stream(self):
        _, stream = build_scenario_stream(small_config("diurnal"))
        chunks = list(stream.iter_chunks(64))
        assert all(len(chunk) == 64 for chunk in chunks[:-1])
        assert [e for chunk in chunks for e in chunk] == list(stream)
        with pytest.raises(ValueError):
            next(stream.iter_chunks(0))

    def test_queries_and_updates_are_lazy_filters(self):
        _, stream = build_scenario_stream(small_config("update_storm"))
        queries = list(stream.queries())
        updates = list(stream.updates())
        assert len(queries) == SMALL.query_count
        assert len(updates) == SMALL.update_count
        assert [q.query_id for q in queries] == sorted(q.query_id for q in queries)

    @pytest.mark.parametrize("model", WORKLOAD_MODELS)
    def test_streams_survive_pickling(self, model):
        _, stream = build_scenario_stream(small_config(model))
        clone = pickle.loads(pickle.dumps(stream))
        assert list(clone.iter_tagged()) == list(stream.iter_tagged())

    def test_model_streams_expose_counts(self):
        _, stream = build_scenario_stream(small_config("flash_crowd"))
        assert stream.query_count == SMALL.query_count
        assert stream.update_count == SMALL.update_count

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="workload_model"):
            ExperimentConfig(workload_model="tsunami")
        catalog = sdss_catalog(object_count=8, scale=0.001, seed=1)
        with pytest.raises(ValueError):
            build_model_stream(catalog, SMALL)  # "evolving" has no model stream


# ----------------------------------------------------------------------
# Streaming mixer vs materialised mixer
# ----------------------------------------------------------------------
class TestStreamingMixer:
    def _streams(self, query_count: int, update_count: int):
        catalog = sdss_catalog(object_count=16, scale=0.001, seed=3)
        queries = SDSSQueryGenerator(
            catalog, SDSSWorkloadConfig(query_count=query_count, seed=11)
        ).generate()
        updates = SurveyUpdateGenerator(
            catalog, UpdateWorkloadConfig(update_count=update_count, seed=12)
        ).generate()
        return queries, updates

    @pytest.mark.parametrize("mode", ["uniform", "random"])
    @pytest.mark.parametrize("counts", [(40, 40), (50, 13), (3, 60), (0, 10), (10, 0)])
    def test_iter_interleaved_matches_interleave(self, mode, counts):
        queries, updates = self._streams(*counts)
        materialised = interleave(queries, updates, mode=mode, seed=42)
        streamed = list(
            iter_interleaved(
                iter(queries), iter(updates), len(queries), len(updates),
                mode=mode, seed=42,
            )
        )
        assert streamed == list(materialised)

    def test_timestamps_are_consecutive(self):
        queries, updates = self._streams(20, 30)
        events = list(
            iter_interleaved(iter(queries), iter(updates), len(queries), len(updates))
        )
        assert [event.timestamp for event in events] == [
            float(i + 1) for i in range(50)
        ]


# ----------------------------------------------------------------------
# Evolving stream calibration
# ----------------------------------------------------------------------
class TestEvolvingStream:
    def test_cost_scales_are_cached_and_dropped_on_pickle(self):
        _, stream = build_scenario_stream(small_config("evolving"))
        assert isinstance(stream, EvolvingTraceStream)
        assert stream._scales is None
        first = stream._cost_scales()
        assert stream._cost_scales() is first
        clone = pickle.loads(pickle.dumps(stream))
        assert clone._scales is None
        assert clone._cost_scales() == first

    def test_total_costs_hit_the_calibration_targets(self):
        config = small_config("evolving")
        catalog, stream = build_scenario_stream(config)
        stats = stream.describe()
        assert stats["total_query_cost"] == pytest.approx(
            catalog.total_size * config.query_traffic_fraction
        )
        assert stats["total_update_cost"] == pytest.approx(
            catalog.total_size * config.update_traffic_fraction
        )


# ----------------------------------------------------------------------
# Streaming-vs-materialised replay equivalence
# ----------------------------------------------------------------------
class TestReplayEquivalence:
    POLICIES = ("nocache", "replica", "vcover", "soptimal")

    @pytest.mark.parametrize("model", WORKLOAD_MODELS)
    def test_run_results_byte_identical(self, model):
        spec = ScenarioSpec(small_config(model), name=f"equiv-{model}")
        materialised = api.run_scenario(spec, policies=self.POLICIES)
        streamed = api.run_scenario(spec, policies=self.POLICIES, streaming=True)
        assert canonical_payloads(materialised, self.POLICIES) == canonical_payloads(
            streamed, self.POLICIES
        )
        assert materialised.trace_description == streamed.trace_description

    def test_streaming_parallel_matches_serial(self):
        spec = ScenarioSpec(small_config("flash_crowd"))
        serial = api.run_scenario(spec, policies=self.POLICIES, streaming=True, jobs=1)
        parallel = api.run_scenario(
            spec, policies=self.POLICIES, streaming=True, jobs=2
        )
        assert canonical_payloads(serial, self.POLICIES) == canonical_payloads(
            parallel, self.POLICIES
        )

    def test_multicache_replays_streams(self):
        from repro.sim.engine import EngineConfig
        from repro.sim.multicache import run_topology
        from repro.sim.runner import vcover_spec
        from repro.topology.spec import TopologySpec

        config = small_config("flash_crowd")
        catalog, stream = build_scenario_stream(config)
        topology = TopologySpec.uniform(vcover_spec(), 2, cache_fraction=0.3)
        engine = EngineConfig(sample_every=config.sample_every)
        from_stream = run_topology(topology, catalog, stream, engine)
        from_trace = run_topology(topology, catalog, stream.materialise(), engine)
        assert json.dumps(from_stream.aggregate.as_payload(), sort_keys=True) == (
            json.dumps(from_trace.aggregate.as_payload(), sort_keys=True)
        )

    def test_flash_crowd_windows_shape_the_trace(self):
        """The crowd actually migrates the hotspot (guards test vacuity)."""
        config = small_config("flash_crowd").scaled(
            object_count=64,
            query_count=800,
            flash_crowd_count=1,
            flash_crowd_arrival=0.5,
            flash_crowd_duration=0.4,
        )
        catalog, stream = build_scenario_stream(config)
        assert isinstance(stream, FlashCrowdStream)
        queries = list(stream.queries())
        (start, stop) = stream._crowd_windows()[0]

        def top_objects(window):
            counts = {}
            for query in window:
                for oid in query.object_ids:
                    counts[oid] = counts.get(oid, 0) + 1
            ranked = sorted(counts, key=counts.get, reverse=True)
            return set(ranked[: stream.focus_size])

        before_top = top_objects(queries[:start])
        during_top = top_objects(queries[start:stop])
        # The migrated focus concentrates the crowd on different objects
        # than the pre-crowd hotspot (seeded, so deterministic).
        assert before_top != during_top
