"""Sampling-grid edge cases for both engines.

Regression suite for two end-of-run sampling bugs:

* the engines used to record a *duplicate* final ``TrafficSample`` whenever
  ``total_events % sample_every == 0`` (once from the in-loop grid check,
  once from the epilogue),
* :class:`repro.sim.metrics.CacheOccupancySeries` never received an
  end-of-run sample at all, so it stopped at the last grid point and stayed
  empty for traces shorter than ``sample_every``.

The contract, for every engine and every series: sample indices are strictly
increasing, fall on the grid except for the last one, and always end at
``total_events`` exactly once.
"""

from __future__ import annotations

import pytest

from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.multicache import run_topology
from repro.sim.runner import vcover_spec
from repro.topology import TopologySpec
from repro.workload.trace import QueryEvent, Trace, UpdateEvent
from tests.conftest import make_query, make_update


@pytest.fixture
def catalog():
    return ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0})


def build_trace(events: int) -> Trace:
    items = []
    for index in range(events):
        timestamp = float(index + 1)
        if index % 3 == 2:
            items.append(
                UpdateEvent(
                    make_update(index, object_id=1 + index % 3, cost=1.0, timestamp=timestamp)
                )
            )
        else:
            items.append(
                QueryEvent(
                    make_query(index, object_ids=[1 + index % 3], cost=2.0, timestamp=timestamp)
                )
            )
    return Trace(items)


def run_single(catalog, policy_name: str, events: int, sample_every: int,
               measure_from: int = 0):
    # keep_update_log=False so nocache/replica take the batched executor
    # (the history-free repository is an eligibility condition).
    repository = Repository(catalog, keep_update_log=False)
    link = NetworkLink()
    if policy_name == "nocache":
        policy = NoCachePolicy(repository, 0.0, link)
    elif policy_name == "replica":
        policy = ReplicaPolicy(repository, float("inf"), link)
    else:
        policy = VCoverPolicy(repository, 30.0, link, VCoverConfig())
    engine = SimulationEngine(
        repository, EngineConfig(sample_every=sample_every, measure_from=measure_from)
    )
    return engine.run(policy, build_trace(events), link)


def assert_grid(indices, events: int, sample_every: int) -> None:
    """The grid contract: strictly increasing, on-grid, ends at ``events`` once."""
    assert indices == sorted(set(indices)), f"not strictly increasing: {indices}"
    assert indices[-1] == events
    assert indices.count(events) == 1
    for index in indices[:-1]:
        assert index % sample_every == 0, f"off-grid interior sample {index}"
    expected = list(range(sample_every, events, sample_every)) + [events]
    assert indices == expected


# ``vcover`` exercises the scalar loop, ``nocache``/``replica`` the batched
# executors -- the grid contract must hold identically on every path.
POLICIES = ("nocache", "replica", "vcover")


class TestSingleCacheGrid:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_length_equals_sample_every(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=10, sample_every=10)
        assert result.time_series.event_indices() == [10]

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_length_shorter_than_sample_every(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=7, sample_every=10)
        assert result.time_series.event_indices() == [7]

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_length_multiple_of_sample_every_no_duplicate(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=30, sample_every=10)
        assert_grid(result.time_series.event_indices(), 30, 10)

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_length_off_grid(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=25, sample_every=10)
        assert_grid(result.time_series.event_indices(), 25, 10)

    @pytest.mark.parametrize("policy_name", ("replica", "vcover"))
    def test_occupancy_gets_end_of_run_sample(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=25, sample_every=10)
        assert result.occupancy is not None
        assert_grid(result.occupancy.event_indices, 25, 10)

    @pytest.mark.parametrize("policy_name", ("replica", "vcover"))
    def test_occupancy_sampled_for_short_traces(self, catalog, policy_name):
        # Used to stay completely empty below sample_every.
        result = run_single(catalog, policy_name, events=7, sample_every=10)
        assert result.occupancy.event_indices == [7]

    @pytest.mark.parametrize("policy_name", ("replica", "vcover"))
    def test_occupancy_no_duplicate_on_grid_boundary(self, catalog, policy_name):
        result = run_single(catalog, policy_name, events=20, sample_every=10)
        assert result.occupancy.event_indices == [10, 20]

    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("measure_from", (10, 13))
    def test_warmup_capture_on_and_off_grid(self, catalog, policy_name, measure_from):
        # Reference: a sample-every-1 run records cumulative traffic after
        # every event; warm-up at measure_from is the cumulative cost of the
        # first measure_from events.
        reference = run_single(catalog, policy_name, events=25, sample_every=1)
        expected = reference.time_series.totals()[measure_from - 1]
        result = run_single(
            catalog, policy_name, events=25, sample_every=10, measure_from=measure_from
        )
        assert result.warmup_traffic == pytest.approx(expected)
        assert result.measured_traffic == pytest.approx(
            result.total_traffic - expected
        )

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_measure_from_beyond_trace(self, catalog, policy_name):
        result = run_single(
            catalog, policy_name, events=7, sample_every=10, measure_from=100
        )
        assert result.warmup_traffic == pytest.approx(result.total_traffic)
        assert result.measured_traffic == pytest.approx(0.0)


class TestMultiCacheGrid:
    def run_fleet(self, catalog, events: int, sample_every: int):
        return run_topology(
            TopologySpec.uniform(vcover_spec(), 2, cache_fraction=0.5),
            catalog,
            build_trace(events),
            EngineConfig(sample_every=sample_every),
        )

    def test_no_duplicate_final_sample_on_grid(self, catalog):
        result = self.run_fleet(catalog, events=30, sample_every=10)
        assert_grid(result.aggregate.time_series.event_indices(), 30, 10)
        for run in result.site_runs:
            assert_grid(run.time_series.event_indices(), 30, 10)

    def test_off_grid_length(self, catalog):
        result = self.run_fleet(catalog, events=25, sample_every=10)
        assert_grid(result.aggregate.time_series.event_indices(), 25, 10)
        for run in result.site_runs:
            assert_grid(run.time_series.event_indices(), 25, 10)

    def test_short_trace_still_sampled(self, catalog):
        result = self.run_fleet(catalog, events=7, sample_every=10)
        assert result.aggregate.time_series.event_indices() == [7]
        for run in result.site_runs:
            assert run.time_series.event_indices() == [7]

    def test_occupancy_series_follow_the_same_grid(self, catalog):
        result = self.run_fleet(catalog, events=25, sample_every=10)
        assert result.aggregate.occupancy is not None
        assert_grid(result.aggregate.occupancy.event_indices, 25, 10)
        for run in result.site_runs:
            assert run.occupancy is not None
            assert_grid(run.occupancy.event_indices, 25, 10)

    def test_occupancy_end_of_run_only_for_short_traces(self, catalog):
        result = self.run_fleet(catalog, events=7, sample_every=10)
        assert result.aggregate.occupancy.event_indices == [7]
        for run in result.site_runs:
            assert run.occupancy.event_indices == [7]
