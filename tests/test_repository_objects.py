"""Tests for data objects and object catalogues."""

from __future__ import annotations

import pytest

from repro.repository.catalog import (
    DEFAULT_SCALE,
    PARTITION_LEVELS,
    granularity_catalogs,
    sdss_catalog,
)
from repro.repository.objects import DataObject, ObjectCatalog


class TestDataObject:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataObject(object_id=1, size=-5.0)

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            DataObject(object_id=1, size=5.0, density=-1.0)

    def test_load_cost_equals_size(self):
        obj = DataObject(object_id=1, size=42.0)
        assert obj.load_cost == pytest.approx(42.0)


class TestObjectCatalog:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ObjectCatalog([DataObject(1, 1.0), DataObject(1, 2.0)])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ObjectCatalog([])

    def test_lookup_and_membership(self, small_catalog):
        assert 3 in small_catalog
        assert 99 not in small_catalog
        assert small_catalog[3].size == pytest.approx(30.0)
        assert small_catalog.get(99) is None

    def test_total_size_and_sizes(self, small_catalog):
        assert small_catalog.total_size == pytest.approx(100.0)
        assert small_catalog.sizes()[2] == pytest.approx(20.0)
        assert small_catalog.size_of(4) == pytest.approx(15.0)

    def test_largest_and_smallest(self, small_catalog):
        assert [obj.object_id for obj in small_catalog.largest(2)] == [3, 5]
        assert [obj.object_id for obj in small_catalog.smallest(1)] == [1]

    def test_describe_summary(self, small_catalog):
        stats = small_catalog.describe()
        assert stats["count"] == 5
        assert stats["min_size"] == pytest.approx(10.0)
        assert stats["max_size"] == pytest.approx(30.0)

    def test_object_ids_sorted(self, small_catalog):
        assert small_catalog.object_ids == [1, 2, 3, 4, 5]

    def test_uniform_constructor(self):
        catalog = ObjectCatalog.uniform(count=4, size=25.0)
        assert len(catalog) == 4
        assert catalog.total_size == pytest.approx(100.0)

    def test_uniform_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            ObjectCatalog.uniform(count=0, size=1.0)

    def test_from_sizes(self):
        catalog = ObjectCatalog.from_sizes({7: 3.0, 9: 5.0})
        assert catalog.size_of(9) == pytest.approx(5.0)

    def test_heavy_tailed_total_and_floor(self):
        catalog = ObjectCatalog.heavy_tailed(count=30, total_size=900.0, min_size=2.0)
        assert catalog.total_size == pytest.approx(900.0, rel=1e-6)
        assert min(obj.size for obj in catalog) >= 1.0  # floor applied pre-rescale

    def test_heavy_tailed_is_reproducible(self):
        first = ObjectCatalog.heavy_tailed(count=10, total_size=100.0, seed=3)
        second = ObjectCatalog.heavy_tailed(count=10, total_size=100.0, seed=3)
        assert first.sizes() == second.sizes()

    def test_heavy_tailed_is_skewed(self):
        catalog = ObjectCatalog.heavy_tailed(count=50, total_size=1000.0, alpha=1.1)
        stats = catalog.describe()
        assert stats["max_size"] > 5 * stats["median_size"]

    def test_heavy_tailed_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ObjectCatalog.heavy_tailed(count=0, total_size=10.0)
        with pytest.raises(ValueError):
            ObjectCatalog.heavy_tailed(count=5, total_size=-1.0)


class TestSDSSCatalog:
    def test_default_level_is_68_objects(self):
        catalog = sdss_catalog()
        assert len(catalog) == 68

    def test_scaling_shrinks_total_size(self):
        full = sdss_catalog(scale=1.0)
        scaled = sdss_catalog(scale=DEFAULT_SCALE)
        assert scaled.total_size == pytest.approx(full.total_size * DEFAULT_SCALE, rel=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sdss_catalog(object_count=0)
        with pytest.raises(ValueError):
            sdss_catalog(scale=0.0)

    def test_granularity_catalogs_cover_paper_levels(self):
        catalogs = granularity_catalogs()
        assert set(catalogs) == set(PARTITION_LEVELS)
        totals = {count: catalog.total_size for count, catalog in catalogs.items()}
        # Every level covers the same data, so totals agree.
        baseline = totals[68]
        for total in totals.values():
            assert total == pytest.approx(baseline, rel=1e-6)
