"""Tests for the SDSS query generator, the survey update generator and templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.repository.objects import ObjectCatalog
from repro.repository.queries import QueryTemplate
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.templates import (
    DEFAULT_TEMPLATES,
    choose_template,
    normalized_weights,
    template_mix_summary,
)
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig


@pytest.fixture
def catalog() -> ObjectCatalog:
    return ObjectCatalog.heavy_tailed(count=40, total_size=400.0, seed=11)


class TestTemplates:
    def test_weights_normalise_to_one(self):
        weights = normalized_weights(DEFAULT_TEMPLATES)
        assert weights.sum() == pytest.approx(1.0)

    def test_choose_template_respects_universe(self, rng):
        names = {choose_template(DEFAULT_TEMPLATES, rng).name for _ in range(200)}
        assert names <= set(QueryTemplate.ALL)

    def test_footprint_and_selectivity_draws_in_range(self, rng):
        for template in DEFAULT_TEMPLATES:
            for _ in range(50):
                size = template.draw_footprint_size(rng)
                assert template.min_objects <= size <= template.max_objects
                assert 0.0 < template.draw_selectivity(rng) <= template.max_selectivity

    def test_mix_summary_keys(self):
        summary = template_mix_summary(DEFAULT_TEMPLATES)
        assert set(summary) == {template.name for template in DEFAULT_TEMPLATES}
        assert sum(summary.values()) == pytest.approx(1.0)


class TestQueryGenerator:
    def test_generates_requested_count(self, catalog):
        generator = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=200))
        assert len(generator.generate()) == 200

    def test_total_cost_matches_target(self, catalog):
        config = SDSSWorkloadConfig(query_count=300, target_total_cost=120.0)
        queries = SDSSQueryGenerator(catalog, config).generate()
        assert sum(q.cost for q in queries) == pytest.approx(120.0, rel=1e-6)

    def test_queries_only_touch_catalog_objects(self, catalog):
        queries = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=200)).generate()
        valid = set(catalog.object_ids)
        for query in queries:
            assert set(query.object_ids) <= valid

    def test_footprints_are_spatially_coherent(self, catalog):
        """Multi-object footprints are contiguous runs of object ids."""
        queries = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=300)).generate()
        for query in queries:
            ids = sorted(query.object_ids)
            if len(ids) > 1:
                span = ids[-1] - ids[0]
                assert span <= 2 * len(ids) or span >= len(catalog) - 2 * len(ids)

    def test_same_seed_reproduces_trace(self, catalog):
        config = SDSSWorkloadConfig(query_count=100, seed=5)
        first = SDSSQueryGenerator(catalog, config).generate()
        second = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=100, seed=5)).generate()
        assert [q.cost for q in first] == [q.cost for q in second]
        assert [q.object_ids for q in first] == [q.object_ids for q in second]

    def test_warmup_queries_are_cheaper(self, catalog):
        config = SDSSWorkloadConfig(
            query_count=400, warmup_fraction=0.5, warmup_cost_factor=0.05, seed=2
        )
        queries = SDSSQueryGenerator(catalog, config).generate()
        first_half = sum(q.cost for q in queries[:200])
        second_half = sum(q.cost for q in queries[200:])
        assert first_half < 0.5 * second_half

    def test_tolerant_fraction_controls_tolerances(self, catalog):
        config = SDSSWorkloadConfig(query_count=400, tolerant_fraction=0.5, seed=9)
        queries = SDSSQueryGenerator(catalog, config).generate()
        tolerant = sum(1 for q in queries if q.tolerance > 0)
        assert 100 < tolerant < 300

    def test_zero_tolerant_fraction(self, catalog):
        config = SDSSWorkloadConfig(query_count=100, tolerant_fraction=0.0)
        queries = SDSSQueryGenerator(catalog, config).generate()
        assert all(q.tolerance == 0.0 for q in queries)

    def test_excluded_hotspots_not_in_focus(self, catalog):
        excluded = catalog.object_ids[:20]
        config = SDSSWorkloadConfig(query_count=50, excluded_hotspots=tuple(excluded))
        generator = SDSSQueryGenerator(catalog, config)
        assert not (set(generator.hotspot_model.current_focus) & set(excluded))

    def test_custom_timestamps(self, catalog):
        config = SDSSWorkloadConfig(query_count=10)
        stamps = [float(10 * i) for i in range(1, 11)]
        queries = SDSSQueryGenerator(catalog, config).generate(timestamps=stamps)
        assert [q.timestamp for q in queries] == stamps

    def test_timestamp_length_mismatch_raises(self, catalog):
        generator = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=10))
        with pytest.raises(ValueError):
            generator.generate(timestamps=[1.0, 2.0])

    def test_query_ids_unique_and_increasing(self, catalog):
        queries = SDSSQueryGenerator(catalog, SDSSWorkloadConfig(query_count=100)).generate()
        ids = [q.query_id for q in queries]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestUpdateGenerator:
    def test_generates_requested_count(self, catalog):
        generator = SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(update_count=150))
        assert len(generator.generate()) == 150

    def test_total_cost_matches_target(self, catalog):
        config = UpdateWorkloadConfig(update_count=200, target_total_cost=80.0)
        updates = SurveyUpdateGenerator(catalog, config).generate()
        assert sum(u.cost for u in updates) == pytest.approx(80.0, rel=1e-6)

    def test_updates_cluster_in_observed_region(self, catalog):
        config = UpdateWorkloadConfig(
            update_count=400, region_fraction=0.3, scan_probability=0.95, seed=8
        )
        generator = SurveyUpdateGenerator(catalog, config)
        region = set(generator.observed_region)
        updates = generator.generate()
        inside = sum(1 for u in updates if u.object_id in region)
        assert inside / len(updates) > 0.85

    def test_region_fraction_validation(self, catalog):
        with pytest.raises(ValueError):
            SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(region_fraction=0.0))

    def test_update_sizes_scale_with_density(self, catalog):
        config = UpdateWorkloadConfig(update_count=600, region_fraction=1.0, scan_probability=0.0)
        updates = SurveyUpdateGenerator(catalog, config).generate()
        densities = catalog.densities()
        dense_ids = {oid for oid, d in densities.items() if d > 2.0}
        sparse_ids = {oid for oid, d in densities.items() if d < 0.5}
        dense_costs = [u.cost for u in updates if u.object_id in dense_ids]
        sparse_costs = [u.cost for u in updates if u.object_id in sparse_ids]
        if dense_costs and sparse_costs:
            assert np.mean(dense_costs) > np.mean(sparse_costs)

    def test_same_seed_reproducible(self, catalog):
        config = UpdateWorkloadConfig(update_count=100, seed=4)
        first = SurveyUpdateGenerator(catalog, config).generate()
        second = SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(update_count=100, seed=4)).generate()
        assert [u.cost for u in first] == [u.cost for u in second]
        assert [u.object_id for u in first] == [u.object_id for u in second]

    def test_scan_advances_through_region(self, catalog):
        config = UpdateWorkloadConfig(update_count=10, scan_length=5, scan_width=3)
        generator = SurveyUpdateGenerator(catalog, config)
        first_scan = generator.current_scan()
        generator.generate()
        assert generator.current_scan() != first_scan or len(generator.observed_region) <= 3

    def test_hotspot_objects_subset_of_region(self, catalog):
        generator = SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(update_count=10))
        assert set(generator.hotspot_objects(5)) <= set(generator.observed_region)

    def test_custom_timestamps_and_mismatch(self, catalog):
        generator = SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(update_count=5))
        stamps = [1.0, 2.0, 3.0, 4.0, 5.0]
        updates = generator.generate(timestamps=stamps)
        assert [u.timestamp for u in updates] == stamps
        with pytest.raises(ValueError):
            SurveyUpdateGenerator(catalog, UpdateWorkloadConfig(update_count=5)).generate(
                timestamps=[1.0]
            )
