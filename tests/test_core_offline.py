"""Tests for the offline optimal decoupling, including the paper's worked example."""

from __future__ import annotations

import pytest

from repro.core.offline import OfflineDecoupler
from tests.conftest import make_query, make_update


class TestInternalGraphConstruction:
    def test_only_fully_cached_queries_participate(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [
            make_query(1, object_ids=[1], cost=5.0, timestamp=10.0),
            make_query(2, object_ids=[1, 2], cost=5.0, timestamp=10.0),  # object 2 not cached
        ]
        updates = [make_update(1, object_id=1, cost=1.0, timestamp=1.0)]
        instance = decoupler.build_instance(queries, updates)
        assert set(instance.left_weights) == {1}

    def test_updates_to_uncached_objects_ignored(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [make_query(1, object_ids=[1], cost=5.0, timestamp=10.0)]
        updates = [make_update(1, object_id=2, cost=1.0, timestamp=1.0)]
        instance = decoupler.build_instance(queries, updates)
        assert instance.edges == frozenset()

    def test_future_updates_do_not_interact(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [make_query(1, object_ids=[1], cost=5.0, timestamp=10.0)]
        updates = [make_update(1, object_id=1, cost=1.0, timestamp=20.0)]
        instance = decoupler.build_instance(queries, updates)
        assert instance.edges == frozenset()

    def test_tolerance_excludes_recent_updates(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [make_query(1, object_ids=[1], cost=5.0, timestamp=10.0, tolerance=3.0)]
        updates = [
            make_update(1, object_id=1, cost=1.0, timestamp=5.0),   # old -> interacts
            make_update(2, object_id=1, cost=1.0, timestamp=9.0),   # recent -> tolerated
        ]
        instance = decoupler.build_instance(queries, updates)
        assert instance.edges == frozenset({(1, 1)})


class TestSolve:
    def test_ship_cheap_updates(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [make_query(1, object_ids=[1], cost=10.0, timestamp=10.0)]
        updates = [make_update(1, object_id=1, cost=2.0, timestamp=1.0)]
        decision = decoupler.solve(queries, updates)
        assert decision.shipped_updates == frozenset({1})
        assert decision.shipped_queries == frozenset()
        assert decision.total_cost == pytest.approx(2.0)

    def test_ship_cheap_queries(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [make_query(1, object_ids=[1], cost=1.0, timestamp=10.0)]
        updates = [make_update(1, object_id=1, cost=20.0, timestamp=1.0)]
        decision = decoupler.solve(queries, updates)
        assert decision.shipped_queries == frozenset({1})
        assert decision.total_cost == pytest.approx(1.0)

    def test_update_shared_by_many_queries_paid_once(self):
        decoupler = OfflineDecoupler(cached_objects=[1])
        queries = [
            make_query(i, object_ids=[1], cost=4.0, timestamp=10.0) for i in range(1, 6)
        ]
        updates = [make_update(1, object_id=1, cost=10.0, timestamp=1.0)]
        decision = decoupler.solve(queries, updates)
        assert decision.shipped_updates == frozenset({1})
        assert decision.total_cost == pytest.approx(10.0)


class TestPaperWorkedExample:
    """The Figure 2 example of Section 3.1, on a consistent instantiation.

    The paper gives partial costs; the values below are consistent with every
    number it does state: query q3 costs 15 GB and accesses {o1, o2, o4};
    loading o4 plus shipping u1, u2, u4 and the query q7 totals 26 GB;
    shipping q3, q7 and q8 instead totals 28 GB.  We instantiate the
    remaining costs as load(o4)=10, u1=1, u2=2, u4=3, u6=12, q7=10, q8=3 and
    verify both totals and their ordering, plus the internal-graph cover for
    the cached objects and the effect of q8's tolerance on u5.
    """

    def _events(self):
        queries = [
            make_query(3, object_ids=[1, 2, 4], cost=15.0, timestamp=3.0),
            make_query(7, object_ids=[2], cost=10.0, timestamp=7.0),
            make_query(8, object_ids=[1, 4], cost=3.0, timestamp=8.0, tolerance=2.0),
        ]
        updates = [
            make_update(1, object_id=2, cost=1.0, timestamp=1.0),
            make_update(2, object_id=4, cost=2.0, timestamp=2.0),
            make_update(4, object_id=4, cost=3.0, timestamp=4.0),
            make_update(5, object_id=1, cost=4.0, timestamp=6.5),  # within q8's tolerance
            make_update(6, object_id=2, cost=12.0, timestamp=5.0),
        ]
        return queries, updates

    def test_loading_o4_beats_shipping_all_queries(self):
        queries, updates = self._events()
        cached = [1, 2, 3]
        decoupler = OfflineDecoupler(cached_objects=cached)
        load_choice = decoupler.evaluate_full_choice(queries, updates, load_objects={4: 10.0})
        ship_choice = decoupler.evaluate_full_choice(queries, updates, load_objects={})
        assert load_choice == pytest.approx(26.0)
        assert ship_choice == pytest.approx(28.0)
        assert load_choice < ship_choice

    def test_internal_cover_ships_q7_when_its_updates_are_expensive(self):
        """On the cached-object subgraph (u1, u6, q7) the cover ships q7.

        Covering q7's interactions with updates would cost u1 + u6 = 13 GB;
        shipping the query costs 10 GB, so the minimum-weight cover picks q7.
        """
        queries, updates = self._events()
        decoupler = OfflineDecoupler(cached_objects=[1, 2, 3])
        decision = decoupler.solve([queries[1]], updates)
        assert decision.shipped_queries == frozenset({7})
        assert decision.total_cost == pytest.approx(10.0)

    def test_tolerance_of_q8_excludes_u5(self):
        queries, updates = self._events()
        decoupler = OfflineDecoupler(cached_objects=[1, 2, 3, 4])
        instance = decoupler.build_instance([queries[2]], updates)
        interacting_updates = {right for _, right in instance.edges}
        assert 5 not in interacting_updates
