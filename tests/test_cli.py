"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workload.trace import Trace

#: Small scenario arguments shared by the CLI tests to keep them fast.
SMALL = ["--objects", "20", "--queries", "400", "--updates", "400", "--seed", "3"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "oracle"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.objects == 68
        assert args.cache == pytest.approx(0.3)


class TestGenerateTrace:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["generate-trace", *SMALL, "--out", str(out)])
        assert code == 0
        assert out.exists()
        trace = Trace.from_jsonl(out)
        assert len(trace) == 800
        captured = capsys.readouterr().out
        assert "wrote 800 events" in captured

    def test_characterise_flag(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate-trace", *SMALL, "--out", str(out), "--characterise"])
        assert "query hotspots" in capsys.readouterr().out


class TestRun:
    def test_run_generated_scenario(self, capsys):
        code = main(["run", *SMALL, "--policy", "nocache"])
        assert code == 0
        output = capsys.readouterr().out
        assert "policy           : nocache" in output
        assert "total traffic" in output

    def test_run_from_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate-trace", *SMALL, "--out", str(out)])
        capsys.readouterr()
        code = main(["run", *SMALL, "--policy", "vcover", "--trace", str(out)])
        assert code == 0
        assert "query_shipping" in capsys.readouterr().out


class TestCompare:
    def test_compare_subset_of_policies(self, capsys):
        code = main(["compare", *SMALL, "--policies", "nocache", "vcover"])
        assert code == 0
        output = capsys.readouterr().out
        assert "nocache" in output and "vcover" in output
        assert "nocache_over_vcover" in output

    def test_compare_default_runs_all(self, capsys):
        code = main(["compare", *SMALL])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("nocache", "replica", "benefit", "vcover", "soptimal"):
            assert policy in output


class TestSweep:
    def test_sweep_grid_writes_one_artifact_per_point(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        code = main([
            "sweep", "--objects", "16", "--queries", "300", "--updates", "300",
            "--policies", "nocache", "vcover", "--cache-fractions", "0.2", "0.4",
            "--seeds", "3", "5", "--jobs", "2", "--out", str(out),
        ])
        assert code == 0
        artifacts = sorted(path.name for path in out.glob("*.json"))
        assert "manifest.json" in artifacts
        assert len(artifacts) == 2 * 2 * 2 + 1  # policy x fraction x seed + manifest
        output = capsys.readouterr().out
        assert "sweep: 8 points, jobs=2" in output
        assert "wrote 8 artifacts" in output

    def test_sweep_defaults_to_scenario_cache_and_seed(self, capsys):
        code = main(["sweep", *SMALL, "--policies", "nocache"])
        assert code == 0
        assert "sweep: 1 points, jobs=1" in capsys.readouterr().out

    def test_compare_with_jobs_flag(self, capsys):
        code = main(["compare", *SMALL, "--policies", "nocache", "vcover",
                     "--jobs", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "nocache" in output and "vcover" in output

    def test_sweep_deduplicates_grid_axes(self, capsys):
        code = main(["sweep", *SMALL, "--policies", "nocache", "nocache",
                     "--seeds", "3", "3"])
        assert code == 0
        assert "sweep: 1 points" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "0"])
