"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.workload.trace import Trace

#: Small scenario arguments shared by the CLI tests to keep them fast.
SMALL = ["--objects", "20", "--queries", "400", "--updates", "400", "--seed", "3"]

#: --set overrides producing an equally small registry experiment run.
SMALL_SET = ["--set", "object_count=20", "--set", "query_count=400",
             "--set", "update_count=400"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "oracle"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.objects == 68
        assert args.cache == pytest.approx(0.3)


class TestGenerateTrace:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["generate-trace", *SMALL, "--out", str(out)])
        assert code == 0
        assert out.exists()
        trace = Trace.from_jsonl(out)
        assert len(trace) == 800
        captured = capsys.readouterr().out
        assert "wrote 800 events" in captured

    def test_characterise_flag(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate-trace", *SMALL, "--out", str(out), "--characterise"])
        assert "query hotspots" in capsys.readouterr().out


class TestRun:
    def test_run_generated_scenario(self, capsys):
        code = main(["run", *SMALL, "--policy", "nocache"])
        assert code == 0
        output = capsys.readouterr().out
        assert "policy           : nocache" in output
        assert "total traffic" in output

    def test_run_from_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate-trace", *SMALL, "--out", str(out)])
        capsys.readouterr()
        code = main(["run", *SMALL, "--policy", "vcover", "--trace", str(out)])
        assert code == 0
        assert "query_shipping" in capsys.readouterr().out


class TestCompare:
    def test_compare_subset_of_policies(self, capsys):
        code = main(["compare", *SMALL, "--policies", "nocache", "vcover"])
        assert code == 0
        output = capsys.readouterr().out
        assert "nocache" in output and "vcover" in output
        assert "nocache_over_vcover" in output

    def test_compare_default_runs_all(self, capsys):
        code = main(["compare", *SMALL])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("nocache", "replica", "benefit", "vcover", "soptimal"):
            assert policy in output


class TestSweep:
    def test_sweep_grid_writes_one_artifact_per_point(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        code = main([
            "sweep", "--objects", "16", "--queries", "300", "--updates", "300",
            "--policies", "nocache", "vcover", "--cache-fractions", "0.2", "0.4",
            "--seeds", "3", "5", "--jobs", "2", "--out", str(out),
        ])
        assert code == 0
        artifacts = sorted(path.name for path in out.glob("*.json"))
        assert "manifest.json" in artifacts
        assert len(artifacts) == 2 * 2 * 2 + 1  # policy x fraction x seed + manifest
        output = capsys.readouterr().out
        assert "sweep: 8 points, jobs=2" in output
        assert "wrote 8 artifacts" in output

    def test_sweep_defaults_to_scenario_cache_and_seed(self, capsys):
        code = main(["sweep", *SMALL, "--policies", "nocache"])
        assert code == 0
        assert "sweep: 1 points, jobs=1" in capsys.readouterr().out

    def test_compare_with_jobs_flag(self, capsys):
        code = main(["compare", *SMALL, "--policies", "nocache", "vcover",
                     "--jobs", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "nocache" in output and "vcover" in output

    def test_sweep_deduplicates_grid_axes(self, capsys):
        code = main(["sweep", *SMALL, "--policies", "nocache", "nocache",
                     "--seeds", "3", "3"])
        assert code == 0
        assert "sweep: 1 points" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "0"])


class TestVersionAndEntryPoint:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_python_m_repro(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0
        assert __version__ in proc.stdout


class TestExperimentSubcommand:
    def test_list_names_every_experiment(self, capsys):
        assert main(["experiment", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig7a", "fig7b", "fig8a", "fig8b", "headline",
                     "cache_size", "warmup", "ablations", "multisite"):
            assert name in output

    def test_list_markdown_is_a_table(self, capsys):
        assert main(["experiment", "list", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("| Experiment |")
        assert "| `headline` |" in output

    def test_run_fig7a(self, capsys):
        code = main(["experiment", "run", "fig7a", *SMALL_SET])
        assert code == 0
        assert "query hotspots" in capsys.readouterr().out

    def test_run_with_knob_override_and_jobs(self, capsys):
        code = main([
            "experiment", "run", "cache_size", *SMALL_SET,
            "--set", "fractions=[0.2, 0.4]",
            "--set", 'policies=["nocache", "vcover"]',
            "--jobs", "2",
        ])
        assert code == 0
        assert "Cache-size sweep" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "run", "does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_override_exits_2(self, capsys):
        assert main(["experiment", "run", "headline", "--set", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_malformed_set_exits_2(self, capsys):
        assert main(["experiment", "run", "headline", "--set", "no-equals"]) == 2
        assert "key=value" in capsys.readouterr().err


class TestScenarioSubcommand:
    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_validate_good_file(self, tmp_path, capsys):
        path = self._write(tmp_path, {"name": "good", "config": {
            "object_count": 20, "query_count": 400, "update_count": 400}})
        assert main(["scenario", "validate", path]) == 0
        output = capsys.readouterr().out
        assert "'good' is valid" in output
        assert "800 (400 queries, 400 updates)" in output

    def test_validate_unknown_knob_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, {"object_cout": 20})
        assert main(["scenario", "validate", path]) == 2
        assert "object_cout" in capsys.readouterr().err

    def test_validate_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["scenario", "validate", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_scenario_run_end_to_end(self, tmp_path, capsys):
        """A JSON-only scenario runs through validate + run with no Python."""
        path = self._write(tmp_path, {"config": {
            "object_count": 20, "query_count": 300, "update_count": 300}})
        assert main(["scenario", "validate", path]) == 0
        capsys.readouterr()
        assert main(["scenario", "run", path, "--policies", "nocache", "vcover"]) == 0
        output = capsys.readouterr().out
        assert "nocache" in output and "vcover" in output
