"""Tests for the multi-cache topology subsystem.

Covers the trace partitioner (repro.workload.partition), the topology specs
(repro.topology), the MultiCacheEngine (repro.sim.multicache) -- including
the load-bearing guarantees: a 1-site topology is byte-identical to a
single-cache run, and a topology replay is deterministic in-process and
across sweep worker counts -- plus the multisite experiment and its
acceptance check (VCover at or below the NoCache yardstick at every site
count).
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import multisite
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.sim.engine import EngineConfig
from repro.sim.multicache import MultiCacheEngine, run_topology
from repro.sim.runner import nocache_spec, run_policy, vcover_spec
from repro.sim.sweep import DEFAULT_SCENARIO, InlineScenario, SweepPoint, SweepRunner
from repro.sky.partition import contiguous_sky_slices
from repro.topology import SiteSpec, TopologySpec, build_sites
from repro.repository.server import Repository
from repro.workload.partition import TracePartitioner
from tests.conftest import make_query


@pytest.fixture(scope="module")
def small_config() -> ExperimentConfig:
    return ExperimentConfig(
        object_count=30, query_count=1200, update_count=1200, sample_every=300
    )


@pytest.fixture(scope="module")
def small_scenario(small_config):
    return build_scenario(small_config)


@pytest.fixture(scope="module")
def engine_config(small_config) -> EngineConfig:
    return EngineConfig(
        sample_every=small_config.sample_every,
        measure_from=small_config.measure_from,
    )


class TestSkySlices:
    def test_slices_are_contiguous_and_cover_everything(self):
        slices = contiguous_sky_slices(range(1, 11), 3)
        assert [len(piece) for piece in slices] == [4, 3, 3]
        assert [oid for piece in slices for oid in piece] == list(range(1, 11))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            contiguous_sky_slices(range(5), 0)
        with pytest.raises(ValueError):
            contiguous_sky_slices(range(3), 4)


class TestTracePartitioner:
    def test_region_assignment_is_contiguous(self, small_scenario):
        ids = small_scenario.catalog.object_ids
        partitioner = TracePartitioner(ids, 3, strategy="region")
        assignment = partitioner.assignment
        assert set(assignment) == set(ids)
        # Contiguous: site index is non-decreasing over sorted object ids.
        sites_in_order = [assignment[oid] for oid in sorted(ids)]
        assert sites_in_order == sorted(sites_in_order)

    def test_affinity_spreads_hot_objects(self, small_scenario):
        partitioner = TracePartitioner.for_trace(
            small_scenario.catalog.object_ids, 4, small_scenario.trace,
            strategy="affinity",
        )
        hot = [oid for oid, _ in small_scenario.trace.query_hotspots(top=4)]
        # The four hottest objects land on four different sites.
        assert len({partitioner.assignment[oid] for oid in hot}) == 4

    def test_query_routed_by_majority_vote(self):
        partitioner = TracePartitioner([1, 2, 3, 4], 2, strategy="region")
        assert partitioner.site_of_query(
            make_query(1, object_ids=[1, 2, 3], cost=1.0, timestamp=1.0)
        ) == 0
        assert partitioner.site_of_query(
            make_query(2, object_ids=[3, 4], cost=1.0, timestamp=2.0)
        ) == 1
        # Tie breaks to the lowest site index.
        assert partitioner.site_of_query(
            make_query(3, object_ids=[2, 3], cost=1.0, timestamp=3.0)
        ) == 0

    def test_split_broadcasts_updates_and_partitions_queries(self, small_scenario):
        trace = small_scenario.trace
        partitioner = TracePartitioner.for_trace(
            small_scenario.catalog.object_ids, 3, trace
        )
        pieces = partitioner.split(trace)
        assert len(pieces) == 3
        for piece in pieces:
            assert piece.update_count == trace.update_count
        assert sum(piece.query_count for piece in pieces) == trace.query_count
        # Every query landed on the site the router names.
        for site, piece in enumerate(pieces):
            for query in piece.queries():
                assert partitioner.site_of_query(query) == site

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="site_count"):
            TracePartitioner([1, 2], 0)
        with pytest.raises(ValueError, match="strategy"):
            TracePartitioner([1, 2], 2, strategy="roundrobin")

    def test_affinity_without_counts_rejected(self):
        # Without counts the greedy assignment would silently put every
        # object on site 0; the constructor must refuse instead.
        with pytest.raises(ValueError, match="query counts"):
            TracePartitioner([1, 2, 3, 4], 2, strategy="affinity")
        with pytest.raises(ValueError, match="query counts"):
            TracePartitioner([1, 2, 3, 4], 2, strategy="affinity", query_counts={})


class TestTopologySpec:
    def test_uniform_builds_ordered_sites(self):
        spec = TopologySpec.uniform(vcover_spec(), 3, cache_fraction=0.25)
        assert spec.site_count == 3
        assert [site.site_id for site in spec.sites] == [0, 1, 2]
        assert spec.name == "vcover-x3"
        assert spec.metadata()["policies"] == ["vcover", "vcover", "vcover"]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one site"):
            TopologySpec(name="empty", sites=())
        with pytest.raises(ValueError, match="strategy"):
            TopologySpec.uniform(vcover_spec(), 2, strategy="nope")
        with pytest.raises(ValueError, match="site ids"):
            TopologySpec(
                name="bad",
                sites=(SiteSpec(site_id=1, spec=vcover_spec()),),
            )

    def test_capacity_resolution(self):
        site = SiteSpec(site_id=0, spec=vcover_spec(), cache_fraction=0.5)
        assert site.resolve_capacity(100.0) == pytest.approx(50.0)
        absolute = SiteSpec(
            site_id=0, spec=vcover_spec(), cache_fraction=0.5, cache_capacity=7.0
        )
        assert absolute.resolve_capacity(100.0) == pytest.approx(7.0)
        defaulted = SiteSpec(site_id=0, spec=vcover_spec())
        assert defaulted.resolve_capacity(100.0) == pytest.approx(30.0)

    def test_spec_is_picklable(self):
        spec = TopologySpec.uniform(vcover_spec(), 4, cache_fraction=0.3)
        clone = pickle.loads(pickle.dumps(spec))
        # partial-based factories do not compare equal across pickling, so
        # compare the metadata (what artifacts and workers actually use).
        assert clone.metadata() == spec.metadata()
        assert clone.sites[0].spec.name == "vcover"


class TestMultiCacheEngine:
    def test_single_site_matches_single_cache_run(
        self, small_config, small_scenario, engine_config
    ):
        capacity = small_scenario.catalog.total_size * small_config.cache_fraction
        single = run_policy(
            vcover_spec(), small_scenario.catalog, small_scenario.trace,
            capacity, engine_config=engine_config,
        )
        topology = run_topology(
            TopologySpec.uniform(
                vcover_spec(), 1, cache_fraction=small_config.cache_fraction
            ),
            small_scenario.catalog, small_scenario.trace, engine_config,
        )
        assert topology.site_count == 1
        assert topology.site_runs[0].as_payload() == single.as_payload()
        assert topology.aggregate.total_traffic == single.total_traffic

    def test_updates_broadcast_queries_split(self, small_scenario, engine_config):
        spec = TopologySpec.uniform(vcover_spec(), 3, cache_fraction=0.3)
        result = run_topology(
            spec, small_scenario.catalog, small_scenario.trace, engine_config
        )
        trace = small_scenario.trace
        total_queries = sum(
            run.queries_answered_at_cache + run.queries_shipped
            for run in result.site_runs
        )
        assert total_queries == trace.query_count
        for run in result.site_runs:
            assert run.events_processed == trace.update_count + (
                run.queries_answered_at_cache + run.queries_shipped
            )
        assert result.aggregate.total_traffic == pytest.approx(
            sum(run.total_traffic for run in result.site_runs)
        )

    def test_repository_shared_not_replayed_per_site(self, small_scenario, engine_config):
        repository = Repository(small_scenario.catalog)
        spec = TopologySpec.uniform(nocache_spec(), 2, cache_fraction=0.3)
        partitioner = TracePartitioner.for_trace(
            small_scenario.catalog.object_ids, 2, small_scenario.trace
        )
        sites = build_sites(spec, repository)
        MultiCacheEngine(repository, sites, partitioner, engine_config).run(
            small_scenario.trace
        )
        # One ingest per update event, regardless of the site count.
        assert repository.stats()["updates_received"] == float(
            small_scenario.trace.update_count
        )

    def test_site_count_mismatch_rejected(self, small_scenario, engine_config):
        repository = Repository(small_scenario.catalog)
        spec = TopologySpec.uniform(nocache_spec(), 2)
        partitioner = TracePartitioner(small_scenario.catalog.object_ids, 3)
        sites = build_sites(spec, repository)
        with pytest.raises(ValueError, match="sites"):
            MultiCacheEngine(repository, sites, partitioner, engine_config)

    def test_format_table_lists_every_site_and_the_aggregate(
        self, small_scenario, engine_config
    ):
        result = run_topology(
            TopologySpec.uniform(vcover_spec(), 3, cache_fraction=0.3),
            small_scenario.catalog, small_scenario.trace, engine_config,
        )
        text = result.format_table()
        assert "3 sites, strategy=region" in text
        for site in range(3):
            assert f"site {site}" in text
        assert "aggregate" in text
        # The aggregate row carries the fleet-wide measured traffic.
        assert f"{result.measured_traffic:.1f}" in text

    def test_aggregate_carries_per_site_stats_and_occupancy(
        self, small_scenario, engine_config
    ):
        result = run_topology(
            TopologySpec.uniform(vcover_spec(), 2, cache_fraction=0.3),
            small_scenario.catalog, small_scenario.trace, engine_config,
        )
        stats = result.aggregate.policy_stats
        assert stats["site_count"] == 2.0
        for site in range(2):
            assert f"site{site}_total_traffic" in stats
            assert f"site{site}_measured_traffic" in stats
        assert result.aggregate.occupancy is not None
        assert len(result.aggregate.occupancy.event_indices) > 0
        for run in result.site_runs:
            assert run.occupancy is not None


class TestTopologyDeterminism:
    def test_rerun_is_byte_identical(self, small_scenario, engine_config):
        spec = TopologySpec.uniform(vcover_spec(), 4, cache_fraction=0.3)
        first = run_topology(
            spec, small_scenario.catalog, small_scenario.trace, engine_config
        )
        second = run_topology(
            spec, small_scenario.catalog, small_scenario.trace, engine_config
        )
        assert first.as_payload() == second.as_payload()

    @pytest.mark.parametrize("strategy", ["region", "affinity"])
    def test_sweep_jobs_match_serial(
        self, small_scenario, engine_config, strategy
    ):
        points = [
            SweepPoint(
                key=f"{spec.name}-x{sites}",
                spec=spec,
                engine=engine_config,
                tags=(("sites", sites),),
                topology=TopologySpec.uniform(
                    spec, sites, cache_fraction=0.3, strategy=strategy
                ),
            )
            for sites in (1, 2)
            for spec in (vcover_spec(), nocache_spec())
        ]
        scenarios = {
            DEFAULT_SCENARIO: InlineScenario(
                small_scenario.catalog, small_scenario.trace
            )
        }
        serial = SweepRunner(jobs=1).run(points, scenarios)
        parallel = SweepRunner(jobs=2).run(points, scenarios)
        assert len(serial) == len(parallel) == len(points)
        for one, other in zip(serial.points, parallel.points, strict=True):
            assert one.point.key == other.point.key
            assert one.payload() == other.payload()

    def test_topology_metadata_lands_in_artifacts(
        self, small_scenario, engine_config, tmp_path
    ):
        points = [
            SweepPoint(
                key="vcover-x2",
                spec=vcover_spec(),
                engine=engine_config,
                topology=TopologySpec.uniform(vcover_spec(), 2, cache_fraction=0.3),
            )
        ]
        scenarios = {
            DEFAULT_SCENARIO: InlineScenario(
                small_scenario.catalog, small_scenario.trace
            )
        }
        result = SweepRunner(jobs=1, output_dir=tmp_path).run(points, scenarios)
        payload = result["vcover-x2"].payload()
        assert payload["topology"]["site_count"] == 2
        assert payload["topology"]["strategy"] == "region"
        assert "site1_measured_traffic" in payload["result"]["policy_stats"]


class TestMultisiteExperiment:
    @pytest.fixture(scope="class")
    def result(self, small_config):
        return multisite.run(
            small_config,
            site_counts=(1, 2, 4),
            policies=("vcover", "nocache"),
            jobs=2,
        )

    def test_vcover_within_yardstick_at_every_site_count(self, result):
        assert result.vcover_within_yardstick()
        for count in result.site_counts:
            assert result.traffic("vcover", count) <= result.traffic("nocache", count)

    def test_nocache_traffic_independent_of_site_count(self, result):
        baseline = result.traffic("nocache", 1)
        for count in result.site_counts:
            assert result.traffic("nocache", count) == pytest.approx(baseline)

    def test_per_site_traffic_sums_to_aggregate(self, result):
        for count in result.site_counts:
            assert sum(result.site_traffic("vcover", count)) == pytest.approx(
                result.traffic("vcover", count)
            )

    def test_format_table_mentions_every_policy(self, result):
        text = multisite.format_table(result)
        assert "vcover" in text and "nocache" in text
        assert "every site count: yes" in text
