"""Tests for the shared policy bookkeeping (BaseCachePolicy) and outcome types."""

from __future__ import annotations

import pytest

from repro.core.decoupling import DecouplingDecision, QueryAction, QueryOutcome
from repro.core.policy import BaseCachePolicy
from tests.conftest import make_query, make_update


class _Concrete(BaseCachePolicy):
    """Minimal concrete policy used to exercise the base class."""

    name = "concrete"

    def on_update(self, update):
        self._register_update(update)

    def on_query(self, query):
        cost = self.ship_query(query)
        return QueryOutcome(
            query_id=query.query_id,
            action=QueryAction.SHIPPED_TO_SERVER,
            query_shipping_cost=cost,
        )


@pytest.fixture
def policy(repository, link):
    return _Concrete(repository, capacity=60.0, link=link)


class TestQueryOutcome:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            QueryOutcome(query_id=1, action="guessed")

    def test_total_cost_sums_components(self):
        outcome = QueryOutcome(
            query_id=1,
            action=QueryAction.ANSWERED_AT_CACHE,
            query_shipping_cost=1.0,
            update_shipping_cost=2.0,
            load_cost=3.0,
        )
        assert outcome.total_cost == pytest.approx(6.0)
        assert outcome.answered_at_cache

    def test_decoupling_decision_membership(self):
        decision = DecouplingDecision(cached_objects=frozenset({1, 2}), estimated_cost=3.0)
        assert decision.caches(1)
        assert not decision.caches(5)


class TestLoadingAndEviction:
    def test_load_object_charges_current_size(self, policy, repository, link):
        repository.ingest_update(make_update(1, object_id=1, cost=5.0, timestamp=0.0))
        cost = policy.load_object(1, timestamp=1.0)
        assert cost == pytest.approx(15.0)
        assert link.total_by_mechanism()["object_loading"] == pytest.approx(15.0)
        assert policy.is_resident(1)

    def test_load_without_charging(self, policy, link):
        policy.load_object(1, timestamp=0.0, charge=False)
        assert link.total_cost == pytest.approx(0.0)
        assert policy.is_resident(1)

    def test_loaded_object_is_fresh(self, policy, repository):
        repository.ingest_update(make_update(1, object_id=2, cost=1.0, timestamp=0.0))
        policy.load_object(2, timestamp=1.0)
        assert policy.outstanding_updates(2) == []
        assert not policy.store.get(2).stale

    def test_evict_frees_space_and_forgets_outstanding(self, policy):
        policy.load_object(1, timestamp=0.0)
        policy.on_update(make_update(1, object_id=1, cost=2.0, timestamp=1.0))
        assert policy.outstanding_updates(1)
        freed = policy.evict_object(1)
        assert freed == pytest.approx(10.0)
        assert policy.outstanding_updates(1) == []
        assert not policy.is_resident(1)


class TestUpdateBookkeeping:
    def test_update_on_resident_object_marks_stale(self, policy):
        policy.load_object(1, timestamp=0.0)
        policy.on_update(make_update(1, object_id=1, cost=2.0, timestamp=1.0))
        assert policy.store.get(1).stale
        assert len(policy.outstanding_updates(1)) == 1

    def test_update_on_non_resident_object_not_tracked(self, policy):
        policy.on_update(make_update(1, object_id=1, cost=2.0, timestamp=1.0))
        assert policy.outstanding_updates(1) == []

    def test_ship_update_charges_and_freshens(self, policy, repository, link):
        policy.load_object(1, timestamp=0.0)
        update = make_update(1, object_id=1, cost=2.0, timestamp=1.0)
        repository.ingest_update(update)
        policy.on_update(update)
        cost = policy.ship_update(update, timestamp=2.0)
        assert cost == pytest.approx(2.0)
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(2.0)
        assert not policy.store.get(1).stale
        assert policy.outstanding_updates(1) == []

    def test_ship_update_not_outstanding_raises(self, policy):
        policy.load_object(1, timestamp=0.0)
        with pytest.raises(ValueError):
            policy.ship_update(make_update(9, object_id=1, cost=1.0, timestamp=0.0), timestamp=1.0)

    def test_partial_shipping_keeps_object_stale(self, policy, repository):
        policy.load_object(1, timestamp=0.0)
        first = make_update(1, object_id=1, cost=2.0, timestamp=1.0)
        second = make_update(2, object_id=1, cost=2.0, timestamp=2.0)
        for update in (first, second):
            repository.ingest_update(update)
            policy.on_update(update)
        policy.ship_update(first, timestamp=3.0)
        assert policy.store.get(1).stale
        assert len(policy.outstanding_updates(1)) == 1

    def test_ship_all_outstanding(self, policy, repository):
        policy.load_object(1, timestamp=0.0)
        for i in range(3):
            update = make_update(i, object_id=1, cost=1.5, timestamp=float(i))
            repository.ingest_update(update)
            policy.on_update(update)
        total = policy.ship_all_outstanding(1, timestamp=5.0)
        assert total == pytest.approx(4.5)
        assert policy.outstanding_updates(1) == []


class TestCurrencyReasoning:
    def test_cache_satisfies_requires_residency(self, policy):
        query = make_query(1, object_ids=[1, 2], cost=1.0, timestamp=5.0)
        assert not policy.cache_satisfies(query)
        policy.load_object(1, timestamp=0.0)
        policy.load_object(2, timestamp=0.0)
        assert policy.cache_satisfies(query)

    def test_cache_satisfies_requires_currency(self, policy):
        policy.load_object(1, timestamp=0.0)
        policy.on_update(make_update(1, object_id=1, cost=1.0, timestamp=2.0))
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=5.0)
        assert not policy.cache_satisfies(query)

    def test_tolerance_allows_recent_updates_to_be_ignored(self, policy):
        policy.load_object(1, timestamp=0.0)
        policy.on_update(make_update(1, object_id=1, cost=1.0, timestamp=98.0))
        tolerant = make_query(1, object_ids=[1], cost=1.0, timestamp=100.0, tolerance=5.0)
        strict = make_query(2, object_ids=[1], cost=1.0, timestamp=100.0, tolerance=0.0)
        assert policy.cache_satisfies(tolerant)
        assert not policy.cache_satisfies(strict)

    def test_interacting_updates_filtered_by_tolerance(self, policy):
        policy.load_object(1, timestamp=0.0)
        old = make_update(1, object_id=1, cost=1.0, timestamp=10.0)
        recent = make_update(2, object_id=1, cost=1.0, timestamp=99.0)
        for update in (old, recent):
            policy.on_update(update)
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=100.0, tolerance=5.0)
        interacting = policy.interacting_updates(query, 1)
        assert [u.update_id for u in interacting] == [1]


class TestAccounting:
    def test_ship_query_charges_link(self, policy, link):
        query = make_query(1, object_ids=[1], cost=7.0, timestamp=1.0)
        assert policy.on_query(query).query_shipping_cost == pytest.approx(7.0)
        assert link.total_cost == pytest.approx(7.0)
        assert policy.total_traffic == pytest.approx(7.0)

    def test_stats_include_store_counters(self, policy):
        policy.load_object(1, timestamp=0.0)
        stats = policy.stats()
        assert stats["store_loads"] == 1
        assert "total_traffic" in stats
