"""Tests for the hierarchical triangular mesh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sky.htm import HTMMesh
from repro.sky.regions import CircularRegion, SkyPoint, random_sky_point


class TestMeshStructure:
    @pytest.mark.parametrize("level,expected", [(0, 8), (1, 32), (2, 128), (3, 512)])
    def test_trixel_counts(self, level, expected):
        assert HTMMesh.trixel_count(level) == expected
        assert len(HTMMesh(level)) == expected

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            HTMMesh(-1)
        with pytest.raises(ValueError):
            HTMMesh(9)

    def test_names_follow_htm_convention(self):
        mesh = HTMMesh(1)
        names = {trixel.name for trixel in mesh}
        assert all(name[0] in "NS" for name in names)
        assert all(len(name) == 3 for name in names)
        assert len(names) == 32

    def test_children_are_one_level_deeper(self):
        mesh = HTMMesh(0)
        parent = next(iter(mesh))
        children = parent.children()
        assert len(children) == 4
        assert all(child.level == 1 for child in children)
        assert all(child.name.startswith(parent.name) for child in children)

    def test_by_name_lookup(self):
        mesh = HTMMesh(1)
        trixel = mesh.trixels()[0]
        assert mesh.by_name(trixel.name) is trixel


class TestLocate:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_located_trixel_contains_the_point(self, level):
        mesh = HTMMesh(level)
        rng = np.random.default_rng(7)
        for _ in range(50):
            point = random_sky_point(rng)
            trixel = mesh.locate(point)
            # The located trixel must contain the point (allowing edge cases
            # where the nearest trixel was chosen due to numerical ties).
            assert trixel.contains(point) or trixel.center.angular_distance(point) <= (
                trixel.angular_radius + 1e-6
            )

    def test_locate_is_deterministic(self):
        mesh = HTMMesh(3)
        point = SkyPoint(ra=123.0, dec=45.0)
        assert mesh.locate(point).name == mesh.locate(point).name

    def test_every_point_maps_to_exactly_one_level_trixel(self):
        mesh = HTMMesh(2)
        rng = np.random.default_rng(3)
        for _ in range(30):
            point = random_sky_point(rng)
            assert mesh.locate(point).level == 2


class TestOverlap:
    def test_region_overlaps_its_containing_trixel(self):
        mesh = HTMMesh(2)
        point = SkyPoint(ra=80.0, dec=30.0)
        region = CircularRegion(center=point, radius=2.0)
        containing = mesh.locate(point)
        overlapping_names = {trixel.name for trixel in mesh.overlapping(region)}
        assert containing.name in overlapping_names

    def test_small_region_overlaps_few_trixels(self):
        mesh = HTMMesh(2)
        region = CircularRegion(center=SkyPoint(ra=80.0, dec=30.0), radius=0.5)
        assert 1 <= len(mesh.overlapping(region)) <= 8

    def test_huge_region_overlaps_everything(self):
        mesh = HTMMesh(1)
        region = CircularRegion(center=SkyPoint(ra=0.0, dec=0.0), radius=180.0)
        assert len(mesh.overlapping(region)) == len(mesh)

    def test_trixel_geometry_properties(self):
        mesh = HTMMesh(1)
        for trixel in mesh:
            assert 0.0 < trixel.angular_radius < 90.0
            assert trixel.contains(trixel.center)
