"""Tests for the simulation engine, metrics, results and runner."""

from __future__ import annotations

import pytest

from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries
from repro.sim.runner import compare_policies, default_policy_specs, run_policy
from repro.workload.trace import QueryEvent, Trace, UpdateEvent
from tests.conftest import make_query, make_update


@pytest.fixture
def catalog():
    return ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0})


def build_trace(events: int = 30) -> Trace:
    items = []
    for index in range(events):
        timestamp = float(index + 1)
        if index % 3 == 2:
            items.append(UpdateEvent(make_update(index, object_id=1 + index % 3, cost=1.0,
                                                  timestamp=timestamp)))
        else:
            items.append(QueryEvent(make_query(index, object_ids=[1 + index % 3], cost=2.0,
                                               timestamp=timestamp)))
    return Trace(items)


class TestTrafficTimeSeries:
    def test_sampling_grid(self):
        link = NetworkLink()
        series = TrafficTimeSeries(link, sample_every=10)
        for index in range(1, 31):
            link.ship_query(1.0, timestamp=float(index))
            series.maybe_sample(index)
        assert series.event_indices() == [10, 20, 30]
        assert series.totals() == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)]

    def test_invalid_sample_every(self):
        with pytest.raises(ValueError):
            TrafficTimeSeries(NetworkLink(), sample_every=0)

    def test_series_for_mechanism(self):
        link = NetworkLink()
        series = TrafficTimeSeries(link, sample_every=1)
        link.load_object(5.0, timestamp=1.0)
        series.sample(1)
        assert series.series_for("object_loading") == [pytest.approx(5.0)]
        with pytest.raises(ValueError):
            series.series_for("teleport")

    def test_final_total_empty(self):
        series = TrafficTimeSeries(NetworkLink(), sample_every=1)
        assert series.final_total() == 0.0

    def test_occupancy_series(self):
        occupancy = CacheOccupancySeries(sample_every=5)
        occupancy.maybe_sample(5, used=10.0, capacity=40.0, count=2)
        occupancy.maybe_sample(7, used=10.0, capacity=40.0, count=2)
        assert occupancy.event_indices == [5]
        assert occupancy.occupancy == [pytest.approx(0.25)]


class TestEngine:
    def test_run_counts_queries_and_samples(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        trace = build_trace(30)
        result = engine.run(policy, trace, link)
        assert result.events_processed == 30
        assert result.queries_shipped == trace.query_count
        assert result.queries_answered_at_cache == 0
        assert result.total_traffic == pytest.approx(trace.total_query_cost())
        assert result.time_series.event_indices()[-1] == 30

    def test_measurement_window_excludes_warmup(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10, measure_from=15))
        trace = build_trace(30)
        result = engine.run(policy, trace, link)
        assert 0.0 < result.warmup_traffic < result.total_traffic
        assert result.measured_traffic == pytest.approx(
            result.total_traffic - result.warmup_traffic
        )

    def test_progress_callback_invoked(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        calls = []
        engine.run(policy, build_trace(30), link, progress=lambda done, total: calls.append(done))
        assert calls == [10, 20, 30]

    def test_progress_reports_completion_of_short_traces(self, catalog):
        # Regression: traces shorter than sample_every never hit a sampling
        # boundary, so the progress callback was never invoked and callers
        # never saw the run finish.
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=1000))
        calls = []
        engine.run(
            policy, build_trace(7), link, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(7, 7)]

    def test_progress_final_report_not_duplicated(self, catalog):
        # A trace ending exactly on a sampling boundary already reports
        # (total, total) from inside the loop; the completion guarantee must
        # not fire a second time.
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        calls = []
        engine.run(
            policy, build_trace(20), link, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(10, 20), (20, 20)]

    def test_progress_fires_between_boundaries_and_at_end(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        calls = []
        engine.run(
            policy, build_trace(25), link, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(10, 25), (20, 25), (25, 25)]

    def test_progress_on_empty_trace(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = NoCachePolicy(repository, 0.0, link)
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        calls = []
        engine.run(
            policy, Trace([]), link, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(0, 0)]

    def test_vcover_run_produces_policy_stats(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = VCoverPolicy(repository, 30.0, link, VCoverConfig())
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        result = engine.run(policy, build_trace(30), link)
        assert "update_manager_decisions" in result.policy_stats

    def test_occupancy_series_attached_to_result(self, catalog):
        # Regression: the engine used to build and sample the occupancy
        # series but never attach it to the RunResult.
        repository = Repository(catalog)
        link = NetworkLink()
        policy = VCoverPolicy(repository, 30.0, link, VCoverConfig())
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        result = engine.run(policy, build_trace(30), link)
        assert result.occupancy is not None
        assert result.occupancy.event_indices == [10, 20, 30]
        assert len(result.occupancy.occupancy) == 3
        assert result.occupancy.resident_objects[-1] == len(policy.store)

    def test_occupancy_serialised_in_payload(self, catalog):
        repository = Repository(catalog)
        link = NetworkLink()
        policy = VCoverPolicy(repository, 30.0, link, VCoverConfig())
        engine = SimulationEngine(repository, EngineConfig(sample_every=10))
        result = engine.run(policy, build_trace(30), link)
        payload = result.as_payload()
        assert payload["occupancy"] == [
            [index, fraction, resident]
            for index, fraction, resident in zip(
                result.occupancy.event_indices,
                result.occupancy.occupancy,
                result.occupancy.resident_objects,
                strict=True,
            )
        ]


class TestResults:
    def test_run_result_summary_and_fraction(self, catalog):
        spec = default_policy_specs(include=("nocache",))[0]
        result = run_policy(spec, catalog, build_trace(30), cache_capacity=30.0)
        assert result.cache_answer_fraction == 0.0
        assert "total_traffic" in result.summary()

    def test_comparison_ratios_and_ranking(self, catalog):
        trace = build_trace(60)
        comparison = compare_policies(
            catalog, trace, cache_fraction=0.5,
            specs=default_policy_specs(include=("nocache", "replica", "vcover")),
        )
        assert set(comparison.policy_names()) == {"nocache", "replica", "vcover"}
        ranking = comparison.ranking()
        assert ranking == sorted(ranking, key=lambda item: item[1])
        assert comparison.ratio("nocache", "nocache") == pytest.approx(1.0)
        table = comparison.as_table()
        assert "nocache" in table and "vcover" in table
        assert "nocache_over_vcover" in comparison.summary()

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError):
            default_policy_specs(include=("quantum",))

    def test_run_policy_uses_fresh_repository(self, catalog):
        """Two runs over the same catalogue do not contaminate each other."""
        trace = build_trace(30)
        spec = default_policy_specs(include=("replica",))[0]
        first = run_policy(spec, catalog, trace, cache_capacity=0.0)
        second = run_policy(spec, catalog, trace, cache_capacity=0.0)
        assert first.total_traffic == pytest.approx(second.total_traffic)

    def test_absolute_cache_capacity_override(self, catalog):
        trace = build_trace(30)
        comparison = compare_policies(
            catalog, trace, cache_capacity=5.0,
            specs=default_policy_specs(include=("vcover",)),
        )
        assert comparison["vcover"].policy_stats["store_capacity"] == pytest.approx(5.0)
