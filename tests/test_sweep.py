"""Tests for the parallel sweep runner (repro.sim.sweep).

The load-bearing guarantees: a sweep's results are independent of the worker
count (``jobs=1`` and ``jobs=4`` produce byte-identical traffic totals),
every policy spec the repo ships can cross a process boundary, and the JSON
artifacts round-trip losslessly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.benefit import BenefitConfig
from repro.core.vcover import VCoverConfig
from repro.experiments import ablations, cache_size, fig8a
from repro.experiments.config import ConfiguredScenario, ExperimentConfig, build_scenario
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig
from repro.sim.runner import (
    benefit_spec,
    compare_policies,
    default_policy_specs,
    vcover_spec,
)
from repro.sim.sweep import (
    DEFAULT_SCENARIO,
    InlineScenario,
    SweepPoint,
    SweepRunner,
    derive_seed,
    load_artifacts,
)


@pytest.fixture(scope="module")
def small_config() -> ExperimentConfig:
    return ExperimentConfig(
        object_count=12, query_count=300, update_count=300, sample_every=100
    )


@pytest.fixture(scope="module")
def small_scenario(small_config):
    return build_scenario(small_config)


def _grid_points(small_config, fractions=(0.2, 0.4), seeds=(3, 5)):
    """A policy x fraction x seed grid of 2 x 2 x 2 = 8 points."""
    specs = default_policy_specs(include=("nocache", "vcover"))
    points = [
        SweepPoint(
            key=f"{spec.name}-c{fraction:g}-s{seed}",
            spec=spec,
            scenario=f"seed{seed}",
            cache_fraction=fraction,
            engine=EngineConfig(sample_every=100),
            seed=seed,
            tags=(("fraction", fraction), ("seed", seed)),
        )
        for seed in seeds
        for fraction in fractions
        for spec in specs
    ]
    scenarios = {
        f"seed{seed}": ConfiguredScenario(small_config.scaled(seed=seed))
        for seed in seeds
    }
    return points, scenarios


class TestPicklability:
    def test_default_specs_survive_pickling(self):
        for spec in default_policy_specs(
            vcover_config=VCoverConfig(eviction_policy="lru"),
            benefit_config=BenefitConfig(window_size=123),
        ):
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.name == spec.name

    def test_unpickled_factory_builds_a_working_policy(self, small_scenario):
        spec = pickle.loads(pickle.dumps(vcover_spec(VCoverConfig(seed=5))))
        repository = Repository(small_scenario.catalog)
        policy = spec.factory(repository, 100.0, NetworkLink())
        assert policy.name == "vcover"

    def test_ablation_variant_specs_survive_pickling(self):
        variants = [
            vcover_spec(VCoverConfig(randomized_loading=False), name="vcover-counter"),
            vcover_spec(VCoverConfig(flow_method="dinic"), name="vcover-dinic"),
            benefit_spec(BenefitConfig(window_size=250, alpha=0.9), name="benefit-a0.9"),
        ]
        for spec in variants:
            assert pickle.loads(pickle.dumps(spec)).name == spec.name

    def test_sweep_points_and_scenarios_survive_pickling(self, small_config):
        points, scenarios = _grid_points(small_config)
        for point in points:
            assert pickle.loads(pickle.dumps(point)).key == point.key
        for scenario in scenarios.values():
            assert pickle.loads(pickle.dumps(scenario)).config == scenario.config


class TestDeterminism:
    def test_compare_policies_parallel_matches_serial(self, small_config, small_scenario):
        engine = EngineConfig(sample_every=100, measure_from=small_config.measure_from)
        serial = compare_policies(
            small_scenario.catalog, small_scenario.trace,
            cache_fraction=0.3, engine_config=engine, jobs=1,
        )
        parallel = compare_policies(
            small_scenario.catalog, small_scenario.trace,
            cache_fraction=0.3, engine_config=engine, jobs=4,
        )
        assert serial.policy_names() == parallel.policy_names()
        for name in serial.policy_names():
            assert serial[name].total_traffic == parallel[name].total_traffic
            assert serial[name].warmup_traffic == parallel[name].warmup_traffic
            assert serial[name].traffic_by_mechanism == parallel[name].traffic_by_mechanism
            assert (
                serial[name].queries_answered_at_cache
                == parallel[name].queries_answered_at_cache
            )

    def test_grid_sweep_parallel_matches_serial(self, small_config):
        points, scenarios = _grid_points(small_config)
        assert len(points) >= 8
        serial = SweepRunner(jobs=1).run(points, scenarios)
        parallel = SweepRunner(jobs=4).run(points, scenarios)
        assert len(serial) == len(parallel) == len(points)
        for one, other in zip(serial.points, parallel.points, strict=True):
            assert one.point.key == other.point.key
            assert one.payload() == other.payload()

    def test_derive_seed_is_stable_and_spreads(self):
        assert derive_seed(7, "vcover", 0.3) == derive_seed(7, "vcover", 0.3)
        seeds = {derive_seed(7, name, i) for i, name in enumerate(("a", "b", "c", "d"))}
        assert len(seeds) == 4


class TestArtifacts:
    def test_one_json_artifact_per_point_plus_manifest(self, small_config, tmp_path):
        points, scenarios = _grid_points(small_config)
        out = tmp_path / "artifacts"
        result = SweepRunner(jobs=2, output_dir=out).run(points, scenarios)
        assert result.artifact_dir == out
        files = sorted(path.name for path in out.glob("*.json"))
        assert len(files) == len(points) + 1  # one per point + manifest
        payloads = load_artifacts(out)
        assert set(payloads) == {point.key for point in points}

    def test_artifact_round_trip(self, small_config, tmp_path):
        points, scenarios = _grid_points(small_config, fractions=(0.3,), seeds=(3,))
        result = SweepRunner(jobs=1, output_dir=tmp_path).run(points, scenarios)
        payloads = load_artifacts(tmp_path)
        for point_result in result.points:
            assert payloads[point_result.point.key] == point_result.payload()

    def test_truncated_artifact_dir_detected(self, small_config, tmp_path):
        points, scenarios = _grid_points(small_config, fractions=(0.3,), seeds=(3,))
        SweepRunner(jobs=1, output_dir=tmp_path).run(points, scenarios)
        (tmp_path / f"{points[0].key}.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_artifacts(tmp_path)


class TestRunnerValidation:
    def test_duplicate_keys_rejected(self, small_scenario):
        spec = default_policy_specs(include=("nocache",))[0]
        points = [SweepPoint(key="dup", spec=spec), SweepPoint(key="dup", spec=spec)]
        scenarios = {
            DEFAULT_SCENARIO: InlineScenario(small_scenario.catalog, small_scenario.trace)
        }
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner().run(points, scenarios)

    def test_unknown_scenario_rejected(self, small_scenario):
        spec = default_policy_specs(include=("nocache",))[0]
        points = [SweepPoint(key="p", spec=spec, scenario="missing")]
        scenarios = {
            DEFAULT_SCENARIO: InlineScenario(small_scenario.catalog, small_scenario.trace)
        }
        with pytest.raises(ValueError, match="unknown scenario"):
            SweepRunner().run(points, scenarios)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_progress_fires_once_per_point(self, small_config):
        points, scenarios = _grid_points(small_config, fractions=(0.3,), seeds=(3,))
        calls = []
        SweepRunner(progress=lambda done, total, result: calls.append((done, total))).run(
            points, scenarios
        )
        assert calls == [(1, len(points)), (2, len(points))]

    def test_selection_and_comparison_slices(self, small_config):
        points, scenarios = _grid_points(small_config)
        result = SweepRunner(jobs=1).run(points, scenarios)
        slice_points = result.select(fraction=0.2, seed=3)
        assert {p.point.spec.name for p in slice_points} == {"nocache", "vcover"}
        comparison = result.comparison(fraction=0.2, seed=3)
        assert set(comparison.policy_names()) == {"nocache", "vcover"}
        with pytest.raises(ValueError, match="more than once"):
            result.comparison(fraction=0.2)


class TestExperimentsOnSweep:
    def test_cache_size_sweep_parallel_matches_serial(self, small_config):
        kwargs = dict(fractions=(0.2, 0.5), policies=("nocache", "vcover"))
        serial = cache_size.run(small_config, jobs=1, **kwargs)
        parallel = cache_size.run(small_config, jobs=2, **kwargs)
        assert serial.traffic == parallel.traffic

    def test_ablation_jobs_matches_serial(self, small_config, small_scenario):
        serial = ablations.run_flow_method_ablation(small_config, small_scenario, jobs=1)
        parallel = ablations.run_flow_method_ablation(small_config, small_scenario, jobs=2)
        assert serial.traffic == parallel.traffic

    def test_fig8a_comparisons_carry_trace_description(self, small_config):
        result = fig8a.run(small_config, multipliers=(1.0,), policies=("nocache",))
        assert result.comparisons[0].trace_description["events"] > 0
