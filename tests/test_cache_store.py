"""Tests for the space-constrained cache store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import CacheCapacityError, CacheStore


class TestCapacity:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheStore(-1.0)

    def test_insert_tracks_used_and_free(self):
        store = CacheStore(100.0)
        store.insert(1, size=30.0, version=0, timestamp=0.0)
        assert store.used == pytest.approx(30.0)
        assert store.free == pytest.approx(70.0)

    def test_insert_beyond_capacity_raises(self):
        store = CacheStore(50.0)
        store.insert(1, size=40.0, version=0, timestamp=0.0)
        with pytest.raises(CacheCapacityError):
            store.insert(2, size=20.0, version=0, timestamp=0.0)

    def test_duplicate_insert_raises(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        with pytest.raises(ValueError):
            store.insert(1, size=10.0, version=0, timestamp=0.0)

    def test_fits_and_can_ever_fit(self):
        store = CacheStore(50.0)
        store.insert(1, size=40.0, version=0, timestamp=0.0)
        assert not store.fits(20.0)
        assert store.can_ever_fit(45.0)
        assert not store.can_ever_fit(60.0)

    def test_unbounded_capacity(self):
        store = CacheStore(float("inf"))
        for object_id in range(100):
            store.insert(object_id, size=1000.0, version=0, timestamp=0.0)
        assert len(store) == 100

    def test_evict_frees_capacity(self):
        store = CacheStore(50.0)
        store.insert(1, size=40.0, version=0, timestamp=0.0)
        store.evict(1)
        assert store.free == pytest.approx(50.0)
        assert 1 not in store

    def test_evict_missing_raises(self):
        store = CacheStore(50.0)
        with pytest.raises(KeyError):
            store.evict(1)


class TestFreshness:
    def test_mark_stale_and_fresh(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=3, timestamp=0.0)
        assert store.mark_stale(1)
        assert store.get(1).stale
        store.mark_fresh(1, version=5)
        assert not store.get(1).stale
        assert store.get(1).version == 5

    def test_mark_stale_missing_returns_false(self):
        store = CacheStore(100.0)
        assert store.mark_stale(99) is False

    def test_mark_fresh_missing_raises(self):
        store = CacheStore(100.0)
        with pytest.raises(KeyError):
            store.mark_fresh(99, version=1)

    def test_record_hit_updates_counters(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        store.record_hit(1, timestamp=4.0)
        store.record_hit(1, timestamp=7.0)
        record = store.get(1)
        assert record.hits == 2
        assert record.last_hit_at == pytest.approx(7.0)

    def test_record_hit_missing_raises(self):
        store = CacheStore(100.0)
        with pytest.raises(KeyError):
            store.record_hit(1, timestamp=0.0)


class TestQueriesOverResidency:
    def test_contains_all_and_missing(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        store.insert(2, size=10.0, version=0, timestamp=0.0)
        assert store.contains_all([1, 2])
        assert not store.contains_all([1, 3])
        assert store.missing([1, 2, 3, 4]) == {3, 4}

    def test_resident_ids_and_records(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        store.insert(5, size=10.0, version=0, timestamp=0.0)
        assert store.resident_ids() == {1, 5}
        assert {record.object_id for record in store.records()} == {1, 5}

    def test_stats_and_counters(self):
        store = CacheStore(100.0)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        store.evict(1)
        store.insert(2, size=20.0, version=0, timestamp=0.0)
        stats = store.stats()
        assert stats["loads"] == 2
        assert stats["evictions"] == 1
        assert stats["resident_objects"] == 1
        assert store.occupancy() == pytest.approx(0.2)


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=1, max_value=8), st.floats(min_value=1.0, max_value=30.0)),
        min_size=1,
        max_size=40,
    )
)
def test_property_used_never_exceeds_capacity(operations):
    """Whatever the insert/evict sequence, used capacity stays within bounds."""
    store = CacheStore(60.0)
    for object_id, size in operations:
        if object_id in store:
            store.evict(object_id)
            continue
        if store.fits(size):
            store.insert(object_id, size=size, version=0, timestamp=0.0)
    assert 0.0 <= store.used <= store.capacity + 1e-9
    assert store.used == pytest.approx(sum(r.size for r in store.records()))
