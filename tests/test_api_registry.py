"""Tests for the experiment registry and the ``repro.api`` facade."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.experiments import cache_size, headline
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    DuplicateExperimentError,
    ExperimentGrid,
    ExperimentSpec,
    UnknownExperimentError,
    UnknownOverrideError,
    register_experiment,
)

#: Every experiment the paper reproduction registers.
EXPECTED_EXPERIMENTS = {
    "ablations",
    "adaptive_vs_static",
    "cache_adversary",
    "cache_size",
    "diurnal",
    "fuzzed",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "flash_crowd",
    "headline",
    "multisite",
    "update_storm",
    "warmup",
}

#: A scenario small enough for full experiment runs in tests.
TINY = {"object_count": 20, "query_count": 500, "update_count": 500,
        "sample_every": 100, "benefit_window": 200}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(api.list_experiments()) == EXPECTED_EXPERIMENTS

    def test_names_are_unique(self):
        names = api.list_experiments()
        assert len(names) == len(set(names))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateExperimentError):
            register_experiment(
                name="headline", title="imposter", summarise=lambda ctx: None
            )(lambda config, knobs: ExperimentGrid())

    def test_unknown_experiment_raises_with_known_names(self):
        with pytest.raises(UnknownExperimentError, match="headline"):
            api.get_experiment("nope")

    def test_every_spec_round_trips_to_dict(self):
        for name in api.list_experiments():
            spec = api.get_experiment(name)
            payload = spec.to_dict()
            # Through real JSON, as a saved registry dump would be.
            restored = ExperimentSpec.from_dict(json.loads(json.dumps(payload)))
            assert restored == spec, name

    def test_spec_hooks_are_importable_references(self):
        for name in api.list_experiments():
            payload = api.get_experiment(name).to_dict()
            assert payload["build_grid"].startswith("repro.experiments."), name
            assert ":" in payload["summarise"], name


class TestOverrides:
    def test_config_field_override(self):
        spec = api.get_experiment("fig7a")
        assert spec.config.query_count != 300
        result = api.run_experiment(
            "fig7a", overrides={"object_count": 16, "query_count": 300,
                               "update_count": 300}
        )
        assert result.query_points

    def test_knob_override(self):
        result = api.run_experiment(
            "cache_size",
            overrides={**TINY, "fractions": (0.2, 0.5),
                       "policies": ("nocache", "vcover")},
        )
        assert result.fractions == [0.2, 0.5]
        assert set(result.traffic) == {"nocache", "vcover"}

    def test_unknown_override_rejected_with_candidates(self):
        with pytest.raises(UnknownOverrideError, match="fractions"):
            api.run_experiment("cache_size", overrides={"fraktions": (0.2,)})

    def test_unknown_override_on_knobless_experiment(self):
        with pytest.raises(UnknownOverrideError):
            api.run_experiment("fig7b", overrides={"multipliers": (1.0,)})

    def test_non_numeric_config_override_rejected_early(self):
        # A typo'd CLI value must fail with the offending key, not a deep
        # TypeError inside trace generation.
        with pytest.raises(ValueError, match="query_count"):
            api.run_experiment("headline", overrides={"query_count": "lots"})

    def test_wrong_shaped_knob_override_rejected_early(self):
        with pytest.raises(api.InvalidOverrideError, match="top"):
            api.run_experiment("fig7a", overrides={"top": 2.5})
        with pytest.raises(api.InvalidOverrideError, match="fractions"):
            api.run_experiment("cache_size", overrides={"fractions": 0.3})

    def test_wrong_element_type_in_tuple_knob_rejected_early(self):
        with pytest.raises(api.InvalidOverrideError, match="object_counts"):
            api.run_experiment("fig8b", overrides={"object_counts": (10.5,)})

    def test_float_config_override_for_integer_field_rejected(self):
        with pytest.raises(ValueError, match="query_count"):
            api.run_experiment("fig7a", overrides={"query_count": 200.5})

    def test_spec_from_dict_rejects_unknown_config_key(self):
        payload = api.get_experiment("fig7a").to_dict()
        payload["config"] = {"object_cout": 20}
        with pytest.raises(ValueError, match="object_cout"):
            ExperimentSpec.from_dict(payload)

    def test_warmup_sampling_knob_is_not_shadowed(self):
        # occupancy_sample_every must actually change the sampling grid
        # (a knob named sample_every would be swallowed by the config field).
        small = {"object_count": 16, "query_count": 300, "update_count": 300}
        coarse = api.run_experiment(
            "warmup", overrides={**small, "occupancy_sample_every": 300}
        )
        fine = api.run_experiment(
            "warmup", overrides={**small, "occupancy_sample_every": 100}
        )
        assert len(fine.occupancy) > len(coarse.occupancy)

    def test_knob_shadowing_config_field_rejected_at_registration(self):
        from repro.experiments.registry import ExperimentGrid

        with pytest.raises(ValueError, match="shadow"):
            register_experiment(
                name="shadow-test", title="x", summarise=lambda ctx: None,
                knobs={"sample_every": 1},
            )(lambda config, knobs: ExperimentGrid())


class TestLegacyEquivalence:
    """``repro.api.run_experiment`` must match the legacy module ``run()``."""

    def test_headline_matches_module_run(self):
        config = ExperimentConfig(**TINY)
        legacy = headline.run(config, cache_fraction=0.25, jobs=1)
        via_api = api.run_experiment(
            "headline", overrides={**TINY, "small_cache_fraction": 0.25}, jobs=1
        )
        assert via_api.summary() == legacy.summary()

    def test_cache_size_matches_module_run(self):
        config = ExperimentConfig(**TINY)
        legacy = cache_size.run(
            config, fractions=(0.2, 0.4), policies=("nocache", "vcover"), jobs=1
        )
        via_api = api.run_experiment(
            "cache_size",
            overrides={**TINY, "fractions": (0.2, 0.4),
                       "policies": ("nocache", "vcover")},
        )
        assert via_api.fractions == legacy.fractions
        assert via_api.traffic == legacy.traffic

    def test_ablations_match_individual_functions(self):
        from repro.experiments import ablations
        from repro.experiments.config import build_scenario

        config = ExperimentConfig(**TINY)
        combined = api.run_experiment(
            "ablations", overrides={**TINY, "ablations": ("loading", "flow_method")}
        )
        scenario = build_scenario(config)
        loading = ablations.run_loading_ablation(config, scenario)
        flow = ablations.run_flow_method_ablation(config, scenario)
        assert combined["loading"].traffic == loading.traffic
        assert combined["flow_method"].traffic == flow.traffic

    def test_jobs_do_not_change_results(self):
        serial = api.run_experiment(
            "headline", overrides={**TINY, "small_cache_fraction": 0.25}, jobs=1
        )
        parallel = api.run_experiment(
            "headline", overrides={**TINY, "small_cache_fraction": 0.25}, jobs=2
        )
        assert serial.summary() == parallel.summary()


class TestFacade:
    def test_format_result_uses_registered_formatter(self):
        result = api.run_experiment(
            "fig7a", overrides={"object_count": 16, "query_count": 300,
                               "update_count": 300}
        )
        assert "query hotspots" in api.format_result("fig7a", result)

    def test_run_scenario_accepts_spec_config_and_path(self, tmp_path):
        spec = api.ScenarioSpec.from_knobs(object_count=16, query_count=200,
                                           update_count=200)
        from_spec = api.run_scenario(spec, policies=("nocache",))
        from_config = api.run_scenario(spec.config, policies=("nocache",))
        path = api.save_scenario(spec, tmp_path / "spec.json")
        from_path = api.run_scenario(path, policies=("nocache",))
        assert (from_spec.traffic_of("nocache")
                == from_config.traffic_of("nocache")
                == from_path.traffic_of("nocache"))
