"""Tests for sky points, circular regions and great-circle scans."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sky.regions import CircularRegion, GreatCircleScan, SkyPoint, random_sky_point


class TestSkyPoint:
    def test_ra_wraps_to_360(self):
        assert SkyPoint(ra=370.0, dec=0.0).ra == pytest.approx(10.0)

    def test_invalid_dec_rejected(self):
        with pytest.raises(ValueError):
            SkyPoint(ra=0.0, dec=95.0)

    def test_cartesian_round_trip(self):
        point = SkyPoint(ra=123.4, dec=-45.6)
        x, y, z = point.to_cartesian()
        back = SkyPoint.from_cartesian(x, y, z)
        assert back.ra == pytest.approx(point.ra, abs=1e-9)
        assert back.dec == pytest.approx(point.dec, abs=1e-9)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            SkyPoint.from_cartesian(0.0, 0.0, 0.0)

    def test_angular_distance_to_self_is_zero(self):
        point = SkyPoint(ra=10.0, dec=10.0)
        assert point.angular_distance(point) == pytest.approx(0.0, abs=1e-4)

    def test_angular_distance_poles(self):
        north = SkyPoint(ra=0.0, dec=90.0)
        south = SkyPoint(ra=0.0, dec=-90.0)
        assert north.angular_distance(south) == pytest.approx(180.0)

    def test_angular_distance_is_symmetric(self):
        a = SkyPoint(ra=10.0, dec=20.0)
        b = SkyPoint(ra=250.0, dec=-70.0)
        assert a.angular_distance(b) == pytest.approx(b.angular_distance(a))


class TestCircularRegion:
    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            CircularRegion(center=SkyPoint(0.0, 0.0), radius=0.0)
        with pytest.raises(ValueError):
            CircularRegion(center=SkyPoint(0.0, 0.0), radius=200.0)

    def test_contains_center_and_nearby(self):
        region = CircularRegion(center=SkyPoint(ra=40.0, dec=10.0), radius=5.0)
        assert region.contains(SkyPoint(ra=40.0, dec=10.0))
        assert region.contains(SkyPoint(ra=42.0, dec=11.0))
        assert not region.contains(SkyPoint(ra=60.0, dec=10.0))

    def test_sampled_points_fall_inside(self, rng):
        region = CircularRegion(center=SkyPoint(ra=200.0, dec=-30.0), radius=8.0)
        for point in region.sample_points(200, rng):
            assert region.contains(point)

    def test_sample_zero_points(self, rng):
        region = CircularRegion(center=SkyPoint(ra=0.0, dec=0.0), radius=1.0)
        assert region.sample_points(0, rng) == []


class TestGreatCircleScan:
    def test_points_lie_on_great_circle(self):
        scan = GreatCircleScan(pole=SkyPoint(ra=0.0, dec=90.0))
        for point in scan.points(36):
            # Pole at the celestial north: the scan is the equator.
            assert point.dec == pytest.approx(0.0, abs=1e-6)

    def test_points_count_and_spread(self):
        scan = GreatCircleScan(pole=SkyPoint(ra=30.0, dec=20.0))
        points = scan.points(50)
        assert len(points) == 50
        distances = [points[0].angular_distance(p) for p in points[1:]]
        assert max(distances) > 90.0

    def test_zero_points(self):
        scan = GreatCircleScan(pole=SkyPoint(ra=0.0, dec=90.0))
        assert scan.points(0) == []


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_property_random_points_are_valid(seed):
    """Uniformly drawn sky points always have valid coordinates."""
    rng = np.random.default_rng(seed)
    point = random_sky_point(rng)
    assert 0.0 <= point.ra < 360.0
    assert -90.0 <= point.dec <= 90.0
