"""Shared hypothesis strategies for the property-based test suites.

One home for the random-structure generators that several test modules
drive: the flow-layer instances (``tests/test_flow_properties.py``), the
raw event streams of the cross-module properties
(``tests/test_properties.py``), and the scenario-fuzzer compositions
(``tests/test_fuzz.py``, plus the model-invariant property in
``tests/test_workload_scenarios.py``).  Keeping them here means a widened
generator immediately widens every suite that uses it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.flow.graph import FlowNetwork
from repro.flow.vertex_cover import BipartiteCoverInstance
from repro.repository.queries import Query
from repro.repository.updates import Update
from repro.workload.fuzz import CompositionSpec, SegmentSpec
from repro.workload.scenarios import MODEL_NAMES
from repro.workload.trace import QueryEvent, Trace, UpdateEvent

# ----------------------------------------------------------------------
# Flow layer
# ----------------------------------------------------------------------
#: Weights on a 0.25 quantum: exactly representable, so optimal covers are
#: separated by at least 0.25 and never decided by float noise.
weight = st.integers(min_value=1, max_value=64).map(lambda n: n / 4.0)


@st.composite
def cover_instances(draw):
    """A small random weighted bipartite cover instance."""
    left_count = draw(st.integers(min_value=1, max_value=5))
    right_count = draw(st.integers(min_value=1, max_value=5))
    left_weights = {f"q{i}": draw(weight) for i in range(left_count)}
    right_weights = {f"u{j}": draw(weight) for j in range(right_count)}
    all_edges = [(left, right) for left in left_weights for right in right_weights]
    chosen = draw(
        st.lists(st.sampled_from(all_edges), unique=True, max_size=len(all_edges))
    )
    return BipartiteCoverInstance.from_iterables(left_weights, right_weights, chosen)


@st.composite
def flow_networks(draw):
    """A small random capacitated digraph with designated source and sink."""
    vertex_count = draw(st.integers(min_value=2, max_value=7))
    pairs = [
        (tail, head)
        for tail in range(vertex_count)
        for head in range(vertex_count)
        if tail != head
    ]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, min_size=1, max_size=14)
    )
    network = FlowNetwork()
    for vertex in range(vertex_count):
        network.add_vertex(vertex)
    for tail, head in edges:
        network.add_edge(tail, head, draw(weight))
    return network, 0, vertex_count - 1


#: One random operation sequence for the interaction-graph driver.
graph_ops = st.lists(
    st.tuples(
        st.sampled_from(["query", "update", "drop"]),
        st.floats(min_value=0.25, max_value=16.0, allow_nan=False),
        st.lists(st.integers(min_value=0, max_value=30), max_size=4),
    ),
    min_size=1,
    max_size=40,
)


# ----------------------------------------------------------------------
# Raw event streams (cross-module properties)
# ----------------------------------------------------------------------
def event_stream(max_objects: int = 4, max_events: int = 40):
    """A random interleaved stream of (kind, object ids, cost) tuples."""
    event = st.tuples(
        st.sampled_from(["query", "update"]),
        st.lists(st.integers(min_value=1, max_value=max_objects), min_size=1, max_size=3),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.sampled_from([0.0, 0.0, 5.0]),  # tolerance (mostly strict)
    )
    return st.lists(event, min_size=1, max_size=max_events)


def build_trace(raw_events):
    """Convert a raw :func:`event_stream` output into a Trace."""
    events = []
    for index, (kind, object_ids, cost, tolerance) in enumerate(raw_events):
        timestamp = float(index + 1)
        if kind == "query":
            events.append(
                QueryEvent(
                    Query(
                        query_id=index,
                        object_ids=frozenset(object_ids),
                        cost=cost,
                        timestamp=timestamp,
                        tolerance=tolerance,
                    )
                )
            )
        else:
            events.append(
                UpdateEvent(
                    Update(
                        update_id=index,
                        object_id=object_ids[0],
                        cost=cost,
                        timestamp=timestamp,
                    )
                )
            )
    return Trace(events)


# ----------------------------------------------------------------------
# Scenario-fuzzer compositions
# ----------------------------------------------------------------------
#: Seeds for :func:`repro.workload.fuzz.draw_composition_spec` -- wide
#: enough to exercise every branch of the draw, small enough to shrink.
fuzz_seeds = st.integers(min_value=0, max_value=2**16)

#: A bounded float strategy (no NaN/inf): every knob range below uses it.
def _unit(lo: float, hi: float):
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )


#: Per-model knob strategies, mirroring the valid ranges the fuzzer's own
#: numpy sampler draws from (every value respects the model validators).
MODEL_KNOB_STRATEGIES = {
    "flash_crowd": {
        "crowd_count": st.integers(min_value=0, max_value=4),
        "crowd_arrival": _unit(0.0, 0.8),
        "crowd_duration": _unit(0.05, 0.5),
        "crowd_intensity": _unit(0.5, 0.99),
    },
    "diurnal": {
        "cycles": st.integers(min_value=1, max_value=6),
        "amplitude": _unit(0.0, 0.95),
    },
    "update_storm": {
        "storm_count": st.integers(min_value=0, max_value=7),
        "storm_length": st.integers(min_value=10, max_value=200),
        "storm_width": st.integers(min_value=1, max_value=7),
        "storm_cost_factor": _unit(1.0, 5.0),
        "storm_on_focus": _unit(0.0, 1.0),
    },
    "cache_adversary": {
        "scan_probability": _unit(0.0, 0.3),
        "update_in_set": _unit(0.3, 1.0),
    },
}

assert set(MODEL_KNOB_STRATEGIES) == set(MODEL_NAMES)


@st.composite
def segment_specs(draw, max_events: int = 120):
    """One valid composition segment with a random subset of knob overrides."""
    model = draw(st.sampled_from(MODEL_NAMES))
    knob_pool = MODEL_KNOB_STRATEGIES[model]
    chosen = draw(
        st.lists(st.sampled_from(sorted(knob_pool)), unique=True, max_size=len(knob_pool))
    )
    knobs = tuple((name, draw(knob_pool[name])) for name in chosen)
    return SegmentSpec(
        model=model,
        query_count=draw(st.integers(min_value=5, max_value=max_events)),
        update_count=draw(st.integers(min_value=5, max_value=max_events)),
        knobs=knobs,
    )


@st.composite
def composition_specs(draw, max_segments: int = 3, max_events: int = 120):
    """A valid multi-segment composition, small enough to replay in-test."""
    segments = draw(
        st.lists(
            segment_specs(max_events=max_events),
            min_size=1,
            max_size=max_segments,
        )
    )
    return CompositionSpec(
        segments=tuple(segments),
        object_count=draw(st.integers(min_value=16, max_value=64)),
        cache_fraction=draw(_unit(0.1, 0.5)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        name="hypothesis-composition",
    )
