"""Adaptive meta-policy and per-epoch regret tests.

Three layers are pinned here:

* :class:`repro.core.regret.RegretTracker` -- the non-negativity argument
  (the cover-plus-forced lower bound really is a lower bound for any
  *consistent* online schedule) and exactness (replaying the offline-optimal
  cover yields zero regret);
* :class:`repro.core.adaptive.AdaptivePolicy` -- config validation, the
  mirror-the-live-arm accounting (a single-candidate meta-policy must book
  exactly the candidate's traffic), and the forced-query scoping (a
  nocache-pinned meta-policy has zero regret by construction);
* the registered ``adaptive_vs_static`` experiment -- per-scenario rows,
  regret surfaced for every adaptive run, and the beats-or-matches verdict.

The byte-exact determinism of the full pipeline (scores, switches, regret
solves) is pinned separately by the ``adaptive`` fixture in
``tests/test_determinism.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.adaptive import ADAPTIVE_CANDIDATES, AdaptiveConfig, AdaptivePolicy
from repro.core.regret import RegretTracker
from repro.experiments.adaptive import format_report
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.flow.vertex_cover import BipartiteCoverInstance, min_weight_vertex_cover
from repro.sim.engine import EngineConfig
from repro.sim.runner import adaptive_spec, default_policy_specs, run_policy


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        config = AdaptiveConfig()
        assert config.candidates == ADAPTIVE_CANDIDATES
        assert config.initial in config.candidates

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"epoch_length": 0}, "epoch_length"),
            ({"candidates": ()}, "candidates"),
            ({"candidates": ("nocache", "nocache")}, "duplicate"),
            ({"candidates": ("nocache", "soptimal")}, "unknown candidates"),
            ({"candidates": ("vcover",), "initial": "nocache"}, "initial arm"),
            ({"discount": 1.0}, "discount"),
            ({"discount": -0.1}, "discount"),
            ({"switch_margin": 1.0}, "switch_margin"),
            ({"switch_horizon": 0.0}, "switch_horizon"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdaptiveConfig(**kwargs)


# Costs on a 0.25 quantum (same rationale as tests/strategies.py): optimal
# covers are separated by at least 0.25, never decided by float noise.
_cost = st.integers(min_value=1, max_value=32).map(lambda n: n / 4.0)


@st.composite
def observed_epochs(draw):
    """One epoch of observations from a *consistent* online schedule.

    Consistency is the premise of the lower-bound argument: a query answered
    at the cache (not shipped) is only legal once every update it interacts
    with has been shipped, and a shipped update is paid for exactly once.
    """
    update_costs = {
        update_id: draw(_cost)
        for update_id in range(draw(st.integers(min_value=0, max_value=5)))
    }
    queries = []
    for query_id in range(draw(st.integers(min_value=1, max_value=6))):
        interacting = draw(
            st.sets(st.sampled_from(sorted(update_costs)), max_size=len(update_costs))
            if update_costs
            else st.just(set())
        )
        queries.append(
            (
                query_id,
                draw(_cost),
                {update_id: update_costs[update_id] for update_id in interacting},
                draw(st.booleans()),  # shipped?
            )
        )
    forced_costs = draw(st.lists(_cost, max_size=3))
    return queries, forced_costs


class TestRegretTracker:
    def test_empty_epoch_has_zero_regret(self):
        tracker = RegretTracker()
        epoch = tracker.close_epoch()
        assert epoch.observed_cost == 0.0
        assert epoch.offline_cost == 0.0
        assert epoch.regret == 0.0

    @settings(max_examples=60, deadline=None)
    @given(observed_epochs())
    def test_regret_non_negative_for_consistent_schedules(self, epoch_draw):
        """observed >= forced + min-cover for any consistent online schedule.

        The clamp in ``EpochRegret.regret`` must only ever absorb float
        noise, so the un-clamped difference is asserted directly.
        """
        queries, forced_costs = epoch_draw
        tracker = RegretTracker()
        shipped_updates = {}
        for query_id, cost, interacting, shipped in queries:
            tracker.observe_query(query_id, cost, interacting, shipped)
            if not shipped:
                # Consistency: answering at the cache requires every
                # interacting update to have been shipped (once).
                for update_id, update_cost in interacting.items():
                    shipped_updates.setdefault(update_id, update_cost)
        for cost in forced_costs:
            tracker.observe_forced_query(cost)
        tracker.observe_update_traffic(sum(shipped_updates.values()))
        epoch = tracker.close_epoch()
        assert epoch.observed_cost >= epoch.offline_cost - 1e-9
        assert epoch.regret == pytest.approx(
            epoch.observed_cost - epoch.offline_cost, abs=1e-9
        )

    def test_zero_regret_when_replaying_the_offline_optimum(self):
        """An online schedule that ships exactly the min cover has regret 0."""
        left = {1: 4.0, 2: 1.0, 3: 2.5}
        right = {10: 0.5, 11: 3.0, 12: 1.0}
        edges = [(1, 10), (1, 11), (2, 11), (3, 12), (3, 10)]
        cover = min_weight_vertex_cover(
            BipartiteCoverInstance.from_iterables(left, right, edges)
        )
        tracker = RegretTracker()
        for query_id, cost in left.items():
            interacting = {u: right[u] for q, u in edges if q == query_id}
            tracker.observe_query(
                query_id, cost, interacting, shipped=query_id in cover.left_in_cover
            )
        tracker.observe_update_traffic(
            sum(right[update_id] for update_id in cover.right_in_cover)
        )
        tracker.observe_forced_query(7.5)  # charged to both sides
        epoch = tracker.close_epoch()
        assert epoch.offline_cost == pytest.approx(cover.weight + 7.5)
        assert epoch.regret == pytest.approx(0.0, abs=1e-9)

    def test_forced_only_epoch_has_zero_regret(self):
        tracker = RegretTracker()
        for cost in (1.0, 2.5, 4.0):
            tracker.observe_forced_query(cost)
        epoch = tracker.close_epoch()
        assert epoch.observed_cost == pytest.approx(7.5)
        assert epoch.regret == 0.0

    def test_summary_aggregates_across_epochs(self):
        tracker = RegretTracker()
        tracker.observe_forced_query(3.0)
        tracker.observe_update_traffic(2.0)  # pure slack: 2.0 regret
        tracker.close_epoch()
        tracker.observe_forced_query(1.0)
        tracker.close_epoch()
        summary = tracker.summary()
        assert summary["epochs"] == 2.0
        assert summary["observed_traffic"] == pytest.approx(6.0)
        assert summary["offline_traffic"] == pytest.approx(4.0)
        assert summary["total"] == pytest.approx(2.0)
        assert summary["mean_per_epoch"] == pytest.approx(1.0)


@pytest.fixture(scope="module")
def small_scenario():
    config = ExperimentConfig(
        object_count=24, query_count=500, update_count=500, sample_every=250, seed=3
    )
    scenario = build_scenario(config)
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    capacity = scenario.catalog.total_size * config.cache_fraction
    return scenario, engine, capacity


def run_adaptive(small_scenario, **config_kwargs):
    scenario, engine, capacity = small_scenario
    spec = adaptive_spec(AdaptiveConfig(epoch_length=100, **config_kwargs))
    return run_policy(spec, scenario.catalog, scenario.trace, capacity, engine)


class TestAdaptivePolicy:
    def test_nocache_pinned_has_zero_regret(self, small_scenario):
        """Every query is forced under nocache, so observed == offline."""
        run = run_adaptive(small_scenario, candidates=("nocache",), initial="nocache")
        assert run.regret is not None
        assert run.regret["epochs"] > 1
        assert run.regret["total"] == pytest.approx(0.0, abs=1e-9)
        assert run.regret["observed_traffic"] == pytest.approx(
            run.regret["offline_traffic"]
        )

    def test_single_candidate_mirrors_exactly(self, small_scenario):
        """A one-arm meta-policy books exactly the arm's own traffic."""
        scenario, engine, capacity = small_scenario
        run = run_adaptive(small_scenario, candidates=("vcover",), initial="vcover")
        spec = default_policy_specs(include=("vcover",))[0]
        direct = run_policy(spec, scenario.catalog, scenario.trace, capacity, engine)
        assert run.total_traffic == pytest.approx(direct.total_traffic, abs=1e-9)
        for mechanism, cost in direct.traffic_by_mechanism.items():
            assert run.traffic_by_mechanism.get(mechanism, 0.0) == pytest.approx(
                cost, abs=1e-9
            )
        assert run.queries_answered_at_cache == direct.queries_answered_at_cache

    def test_regret_epochs_non_negative_on_real_run(self, small_scenario):
        run = run_adaptive(small_scenario)
        assert run.regret is not None
        assert run.regret["total"] >= 0.0
        assert run.regret["epochs"] >= 4  # 1000 events / epoch_length 100, warmup off

    def test_track_regret_off_omits_summary(self, small_scenario):
        run = run_adaptive(small_scenario, track_regret=False)
        assert run.regret is None
        assert "regret_total" not in run.policy_stats

    def test_stats_expose_arm_accounting(self, small_scenario):
        run = run_adaptive(small_scenario)
        stats = run.policy_stats
        assert stats["epochs"] == sum(
            stats[f"arm_{name}_epochs"] for name in ADAPTIVE_CANDIDATES
        )
        assert stats["switches"] >= 0.0
        assert stats["switch_traffic"] >= 0.0

    def test_engine_reports_no_occupancy_for_meta_policy(self, small_scenario):
        # The meta-policy has no cache store of its own (each shadow arm
        # does); the engine must not fabricate an occupancy series for it.
        run = run_adaptive(small_scenario)
        assert run.occupancy is None


class TestAdaptiveExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return api.run_experiment(
            "adaptive_vs_static",
            overrides={
                "object_count": 24,
                "query_count": 800,
                "update_count": 800,
                "models": ("diurnal", "update_storm"),
                "fuzz_seeds": (5,),
            },
        )

    def test_one_row_per_scenario(self, result):
        assert [row.scenario for row in result.rows] == [
            "diurnal",
            "update_storm",
            "fuzz-5",
        ]

    def test_regret_surfaced_for_every_adaptive_run(self, result):
        for row in result.rows:
            assert row.regret_total is not None
            assert row.regret_total >= 0.0

    def test_best_static_is_a_static(self, result):
        for row in result.rows:
            assert row.best_static != "adaptive"
            assert row.best_static_traffic > 0.0

    def test_adaptive_beats_or_matches_best_static(self, result):
        # The headline acceptance claim, on a scaled-down grid: the
        # meta-policy matches the per-scenario best static (within the
        # tolerance) on at least two scenarios.
        assert result.wins() >= 2

    def test_report_formats(self, result):
        report = format_report(result)
        assert "beats or matches the best static" in report
        for row in result.rows:
            assert row.scenario in report
