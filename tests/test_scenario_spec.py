"""Tests for the declarative scenario layer (``repro.experiments.spec``)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ConfiguredScenario, ExperimentConfig
from repro.experiments.spec import (
    CONFIG_FIELDS,
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    save_scenario,
)
from repro.sim.sweep import InlineScenario, ScenarioSource

#: Small knobs shared by the tests here.
SMALL = dict(object_count=16, query_count=200, update_count=200, seed=5)


class TestScenarioSpec:
    def test_is_a_scenario_source(self):
        spec = ScenarioSpec.from_knobs(**SMALL)
        assert isinstance(spec, ScenarioSource)
        assert isinstance(spec.inline(), ScenarioSource)

    def test_round_trips_through_dict(self):
        spec = ScenarioSpec.from_knobs(name="tiny", **SMALL)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        # And through actual JSON text, which is what scenario files hold.
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_flat_dict_accepted(self):
        spec = ScenarioSpec.from_dict({"name": "flat", **SMALL})
        assert spec.name == "flat"
        assert spec.config.object_count == SMALL["object_count"]

    def test_unknown_knob_rejected_with_key(self):
        with pytest.raises(ScenarioError, match="num_objects"):
            ScenarioSpec.from_dict({"num_objects": 10})

    def test_invalid_value_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario config"):
            ScenarioSpec.from_dict({"object_count": 0})

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ScenarioError, match="query_count"):
            ScenarioSpec.from_dict({"query_count": "lots"})

    def test_unknown_workload_model_reports_key_value_and_choices(self):
        # The boundary error must carry everything needed to fix the file:
        # the offending knob name, the bad value, and the known models.
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict({"workload_model": "tsunami"})
        message = str(excinfo.value)
        assert "'workload_model'" in message
        assert "'tsunami'" in message
        assert "cache_adversary" in message and "flash_crowd" in message

    def test_non_string_workload_model_reports_key_and_value(self):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict({"workload_model": 3})
        message = str(excinfo.value)
        assert "'workload_model'" in message
        assert "must be a string" in message
        assert "3" in message

    def test_invalid_model_knob_value_reports_key_and_value(self):
        # Out-of-range values for the model knobs surface the knob name and
        # the rejected value through the config validator.
        with pytest.raises(ScenarioError, match="adversary_scan_probability.*2.0"):
            ScenarioSpec.from_dict({"adversary_scan_probability": 2.0})
        with pytest.raises(ScenarioError, match="zipf_exponent.*-1.0"):
            ScenarioSpec.from_dict({"zipf_exponent": -1.0})

    def test_float_for_integer_knob_rejected(self):
        # 200.5 events would pass a bare numeric check and explode deep in
        # trace generation; the validator must catch it at the boundary.
        with pytest.raises(ScenarioError, match="query_count.*integer"):
            ScenarioSpec.from_dict({"query_count": 200.5})
        # Float knobs still accept ints.
        spec = ScenarioSpec.from_dict({"cache_fraction": 1})
        assert spec.config.cache_fraction == 1

    def test_scaled_copy(self):
        spec = ScenarioSpec.from_knobs(**SMALL)
        scaled = spec.scaled(query_count=50)
        assert scaled.config.query_count == 50
        assert spec.config.query_count == SMALL["query_count"]

    def test_cache_key_distinguishes_configs(self):
        first = ScenarioSpec.from_knobs(**SMALL)
        second = first.scaled(seed=6)
        assert first.cache_key() != second.cache_key()
        assert first.cache_key() == ScenarioSpec.from_knobs(**SMALL).cache_key()

    def test_cache_key_matches_legacy_configured_scenario(self):
        """Mixed recipe representations memoise to one build per worker."""
        config = ExperimentConfig(**SMALL)
        assert ScenarioSpec(config).cache_key() == ConfiguredScenario(config).cache_key()

    def test_cache_key_ignores_the_name(self):
        # The name is a label, not a build input; same-config specs under
        # different names must memoise to one build per worker.
        config = ExperimentConfig(**SMALL)
        assert (ScenarioSpec(config, name="a").cache_key()
                == ScenarioSpec(config, name="b").cache_key())


class TestInlineDrift:
    def test_recipe_and_inline_paths_build_identical_traces(self, tmp_path):
        """Regression: the declarative and prebuilt paths can never drift.

        The recipe path rebuilds from knobs inside a worker; the inline path
        ships a parent-built trace.  Both must produce byte-identical traces
        for the same knobs.
        """
        spec = ScenarioSpec.from_knobs(**SMALL)
        _, recipe_trace = spec.realise()
        inline = spec.inline()
        assert isinstance(inline, InlineScenario)
        _, inline_trace = inline.realise()
        recipe_path = tmp_path / "recipe.jsonl"
        inline_path = tmp_path / "inline.jsonl"
        recipe_trace.to_jsonl(recipe_path)
        inline_trace.to_jsonl(inline_path)
        assert recipe_path.read_bytes() == inline_path.read_bytes()


class TestScenarioFiles:
    def test_json_round_trip(self, tmp_path):
        spec = ScenarioSpec.from_knobs(name="filed", **SMALL)
        path = save_scenario(spec, tmp_path / "filed.json")
        assert load_scenario(path) == spec

    def test_unnamed_file_takes_stem(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text(json.dumps({"object_count": 12}), encoding="utf-8")
        assert load_scenario(path).name == "mystery"

    def test_toml_file(self, tmp_path):
        path = tmp_path / "survey.toml"
        path.write_text(
            'name = "survey"\n[config]\nobject_count = 12\nquery_count = 150\n'
            "update_count = 150\n",
            encoding="utf-8",
        )
        spec = load_scenario(path)
        assert spec.name == "survey"
        assert spec.config.object_count == 12

    def test_missing_file_raises_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")

    def test_malformed_json_raises_scenario_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario(path)

    def test_file_scenario_runs_end_to_end(self, tmp_path):
        """A scenario defined purely as JSON runs with no Python authored."""
        from repro import api

        path = tmp_path / "e2e.json"
        path.write_text(json.dumps({"config": SMALL}), encoding="utf-8")
        comparison = api.run_scenario(path, policies=("nocache", "vcover"))
        assert set(comparison.runs) == {"nocache", "vcover"}
        assert comparison.traffic_of("nocache") > 0


class TestConfigFieldsConstant:
    def test_matches_experiment_config(self):
        import dataclasses

        assert set(CONFIG_FIELDS) == {
            f.name for f in dataclasses.fields(ExperimentConfig)
        }
