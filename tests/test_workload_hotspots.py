"""Tests for the evolving hotspot model."""

from __future__ import annotations

import pytest

from repro.workload.hotspots import HotspotModel, HotspotPhase


def make_model(rng, **overrides):
    defaults = dict(
        object_ids=list(range(1, 41)),
        phase_length=100,
        focus_size=5,
        focus_probability=0.9,
        drift=0.4,
        zipf_exponent=1.2,
        rng=rng,
    )
    defaults.update(overrides)
    return HotspotModel(**defaults)


class TestValidation:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            HotspotPhase(start_index=0, focus=(1, 1), focus_probability=0.5)
        with pytest.raises(ValueError):
            HotspotPhase(start_index=0, focus=(1, 2), focus_probability=1.5)

    def test_model_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            make_model(rng, phase_length=0)
        with pytest.raises(ValueError):
            make_model(rng, focus_size=0)
        with pytest.raises(ValueError):
            make_model(rng, drift=1.5)
        with pytest.raises(ValueError):
            make_model(rng, focus_probability=2.0)
        with pytest.raises(ValueError):
            make_model(rng, object_ids=[])

    def test_cannot_exclude_everything(self, rng):
        with pytest.raises(ValueError):
            make_model(rng, excluded=list(range(1, 41)))


class TestFocusBehaviour:
    def test_focus_objects_dominate_accesses(self, rng):
        model = make_model(rng, focus_probability=0.95)
        focus = set(model.current_focus)
        hits = sum(1 for _ in range(200) if model.next_object() in focus)
        # Phases change during the 200 draws, so compare loosely.
        assert hits > 100

    def test_excluded_objects_never_in_focus(self, rng):
        excluded = list(range(1, 21))
        model = make_model(rng, excluded=excluded)
        for _ in range(5):
            assert not (set(model.current_focus) & set(excluded))
            model.next_objects(100)  # advance phases

    def test_contiguous_focus_blocks(self, rng):
        model = make_model(rng, contiguous=True, focus_size=6)
        focus = sorted(model.current_focus)
        spans = max(focus) - min(focus)
        # A contiguous block over 40 ids spans at most focus_size - 1 unless
        # it wraps around the end of the id range.
        assert spans <= 5 or spans >= 34

    def test_scattered_mode_supported(self, rng):
        model = make_model(rng, contiguous=False)
        assert len(model.current_focus) == 5

    def test_phases_advance_every_phase_length(self, rng):
        model = make_model(rng, phase_length=50)
        model.next_objects(175)
        assert len(model.phases) == 4  # initial phase + 3 transitions

    def test_drift_zero_keeps_focus(self, rng):
        model = make_model(rng, drift=0.0, contiguous=True)
        first = list(model.current_focus)
        model.next_objects(250)
        assert list(model.current_focus) == first

    def test_full_drift_changes_focus(self, rng):
        model = make_model(rng, drift=1.0, phase_length=50)
        model.next_objects(60)
        # With drift 1.0 the new block is redrawn; it may coincidentally
        # overlap but must not be forced to equal the old one.
        assert isinstance(model.current_focus, list)
        assert len(model.phases) == 2

    def test_access_histogram_totals(self, rng):
        model = make_model(rng)
        histogram = model.access_histogram(300)
        assert sum(histogram.values()) == 300
        assert all(1 <= oid <= 40 for oid in histogram)

    def test_focus_size_capped_by_eligible_objects(self, rng):
        model = make_model(rng, object_ids=[1, 2, 3], focus_size=10)
        assert len(model.current_focus) == 3
