"""Tests for interleaving query and update streams."""

from __future__ import annotations

import pytest

from repro.workload.mixer import interleave
from repro.workload.trace import QueryEvent, UpdateEvent
from tests.conftest import make_query, make_update


def make_streams(query_count: int, update_count: int):
    queries = [
        make_query(i, object_ids=[1], cost=1.0, timestamp=float(i)) for i in range(query_count)
    ]
    updates = [
        make_update(i, object_id=1, cost=1.0, timestamp=float(i)) for i in range(update_count)
    ]
    return queries, updates


class TestInterleave:
    def test_total_event_count(self):
        queries, updates = make_streams(10, 15)
        trace = interleave(queries, updates)
        assert len(trace) == 25
        assert trace.query_count == 10
        assert trace.update_count == 15

    def test_timestamps_are_consecutive_integers(self):
        queries, updates = make_streams(5, 5)
        trace = interleave(queries, updates)
        stamps = [event.timestamp for event in trace]
        assert stamps == [float(i) for i in range(1, 11)]

    def test_internal_order_preserved(self):
        queries, updates = make_streams(8, 8)
        trace = interleave(queries, updates)
        query_ids = [e.query.query_id for e in trace if isinstance(e, QueryEvent)]
        update_ids = [e.update.update_id for e in trace if isinstance(e, UpdateEvent)]
        assert query_ids == sorted(query_ids)
        assert update_ids == sorted(update_ids)

    def test_uniform_mode_spreads_streams(self):
        queries, updates = make_streams(4, 12)
        trace = interleave(queries, updates, mode="uniform")
        # No long run of one kind: the 4 queries split the 12 updates evenly.
        positions = [i for i, e in enumerate(trace) if isinstance(e, QueryEvent)]
        gaps = [b - a for a, b in zip(positions, positions[1:], strict=False)]
        assert max(gaps) <= 5

    def test_random_mode_is_seeded(self):
        queries, updates = make_streams(10, 10)
        first = interleave(queries, updates, mode="random", seed=3)
        second = interleave(queries, updates, mode="random", seed=3)
        assert [e.kind for e in first] == [e.kind for e in second]

    def test_unknown_mode_rejected(self):
        queries, updates = make_streams(2, 2)
        with pytest.raises(ValueError):
            interleave(queries, updates, mode="alternating")

    def test_empty_streams(self):
        assert len(interleave([], [])) == 0
        queries, _ = make_streams(3, 0)
        trace = interleave(queries, [])
        assert trace.update_count == 0 and trace.query_count == 3
        _, updates = make_streams(0, 3)
        trace = interleave([], updates)
        assert trace.query_count == 0 and trace.update_count == 3

    def test_costs_and_footprints_survive_restamping(self):
        queries, updates = make_streams(3, 3)
        trace = interleave(queries, updates)
        assert trace.total_query_cost() == pytest.approx(3.0)
        assert trace.total_update_cost() == pytest.approx(3.0)
        for event in trace:
            if isinstance(event, QueryEvent):
                assert event.query.object_ids == frozenset({1})
