"""Lifecycle tests of the asyncio cache server.

No pytest-asyncio in the toolchain: every test is a sync function driving
its own event loop via ``asyncio.run``.  Each test boots a real server on
an ephemeral localhost port and talks to it over actual TCP.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig, build_scenario_stream
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import CacheServer
from repro.sim.runner import default_policy_specs
from repro.workload.trace import event_to_dict


def tiny_setup(policy: str = "vcover", queries: int = 30, updates: int = 30):
    """A small catalogue, policy spec, capacity and event-dict list."""
    config = ExperimentConfig().scaled(
        object_count=12, query_count=queries, update_count=updates
    )
    catalog, trace = build_scenario_stream(config)
    spec = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=(policy,),
    )[0]
    events = [event_to_dict(event) for event in trace.iter_events()]
    return catalog, spec, catalog.total_size * config.cache_fraction, events


def make_server(policy: str = "vcover", **kwargs):
    catalog, spec, capacity, events = tiny_setup(policy, **kwargs)
    return CacheServer(catalog, spec, capacity), events


class TestBasicServing:
    def test_query_update_stats_round_trip(self):
        server, events = make_server()

        async def drive():
            await server.start()
            try:
                client = await ServeClient.connect(server.host, server.port)
                try:
                    for payload in events[:10]:
                        if payload["kind"] == "query":
                            result = await client.query(payload)
                            assert result["kind"] == "query"
                            assert result["action"]
                        else:
                            result = await client.update(payload)
                            assert result["kind"] == "update"
                            assert result["object_id"] == payload["object_id"]
                    stats = await client.stats()
                finally:
                    await client.close()
            finally:
                await server.stop()
            return stats

        stats = asyncio.run(drive())
        assert stats["events_processed"] == 10
        assert stats["policy"] == "vcover"
        assert stats["queries_answered_at_cache"] + stats["queries_shipped"] == sum(
            1 for payload in events[:10] if payload["kind"] == "query"
        )
        assert stats["total_traffic"] >= 0

    def test_ephemeral_port_resolved_after_start(self):
        server, _ = make_server()

        async def drive():
            await server.start()
            try:
                assert server.port > 0
            finally:
                await server.stop()

        asyncio.run(drive())

    def test_soptimal_rejected_at_construction(self):
        catalog, spec, capacity, _ = tiny_setup("vcover")
        (soptimal,) = default_policy_specs(include=("soptimal",))
        with pytest.raises(ValueError, match="soptimal"):
            CacheServer(catalog, soptimal, capacity)

    def test_malformed_line_answered_with_error_frame(self):
        server, _ = make_server()

        async def drive():
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(b"{not json\n")
                await writer.drain()
                line = await reader.readline()
                frame = protocol.decode_frame(line, expect=("error",))
                assert "JSON" in frame["payload"]["message"]
                # The server closes the connection after a protocol error.
                assert await reader.readline() == b""
                writer.close()
            finally:
                await server.stop()

        asyncio.run(drive())


class TestSequenceOrdering:
    def test_out_of_order_frames_apply_in_seq_order(self):
        server, events = make_server()

        async def drive():
            await server.start()
            try:
                first = await ServeClient.connect(server.host, server.port)
                second = await ServeClient.connect(server.host, server.port)
                try:

                    async def send(client, seq):
                        payload = events[seq]
                        if payload["kind"] == "query":
                            await client.query(payload, seq=seq)
                        else:
                            await client.update(payload, seq=seq)

                    # seq 1 first: it must wait for seq 0 from the other client.
                    later = asyncio.create_task(send(first, 1))
                    await asyncio.sleep(0.05)
                    assert not later.done()
                    await send(second, 0)
                    await later
                finally:
                    await first.close()
                    await second.close()
            finally:
                await server.stop()
            return server.decision_log

        log = asyncio.run(drive())
        expected_ids = []
        for payload in events[:2]:
            key = "query_id" if payload["kind"] == "query" else "update_id"
            expected_ids.append(payload[key])
        assert [row[1] for row in log] == expected_ids


class TestGracefulShutdown:
    def test_draining_server_refuses_new_events(self):
        # A sequence-stranded frame (seq=1, no seq=0) keeps one event in
        # flight, which pins stop() in its drain wait -- giving the test a
        # deterministic window in which the server is draining but alive.
        server, events = make_server()

        async def drive():
            await server.start()
            client = await ServeClient.connect(server.host, server.port)
            blocker = await ServeClient.connect(server.host, server.port)
            try:
                stranded = asyncio.create_task(blocker.update(
                    next(e for e in events if e["kind"] == "update"), seq=1
                ))
                await asyncio.sleep(0.05)
                stopper = asyncio.create_task(server.stop(drain_timeout=1.0))
                await asyncio.sleep(0.05)
                with pytest.raises(ServeError, match="draining"):
                    await client.query(events[0], seq=None)
                # Stats are still answered while draining.
                stats = await client.stats()
                assert stats["draining"] is True
                await stopper
                # The stranded event was flushed at shutdown, not dropped.
                assert (await stranded)["kind"] == "update"
            finally:
                await client.close()
                await blocker.close()

        asyncio.run(drive())

    def test_stop_flushes_sequence_stranded_frames(self):
        # A frame stamped seq=1 arrives but seq=0 never does: shutdown must
        # still apply it (in order) rather than dropping an accepted event.
        server, events = make_server()

        async def drive():
            await server.start()
            client = await ServeClient.connect(server.host, server.port)
            try:
                pending = asyncio.create_task(client.update(
                    next(e for e in events if e["kind"] == "update"), seq=1
                ))
                await asyncio.sleep(0.05)
                assert not pending.done()
                await server.stop(drain_timeout=0.1)
                result = await pending
                assert result["kind"] == "update"
            finally:
                await client.close()
            return server.stats_snapshot()

        stats = asyncio.run(drive())
        assert stats["events_processed"] == 1

    def test_stop_races_with_load_without_wedging(self):
        # Fire a burst of unstamped events from several clients and stop the
        # server mid-burst.  Every request must settle -- with a result if it
        # was accepted before draining, with a draining error otherwise --
        # and the applied count must match the decision log exactly.
        server, events = make_server()

        async def drive():
            await server.start()
            clients = [
                await ServeClient.connect(server.host, server.port)
                for _ in range(12)
            ]
            try:
                async def send(client, payload):
                    if payload["kind"] == "query":
                        return await client.query(payload, seq=None)
                    return await client.update(payload, seq=None)

                tasks = [
                    asyncio.create_task(send(client, payload))
                    for client, payload in zip(clients, events[:12])
                ]
                await asyncio.sleep(0)
                await server.stop()
                settled = await asyncio.gather(*tasks, return_exceptions=True)
            finally:
                for client in clients:
                    await client.close()
            return settled, server.stats_snapshot(), server.decision_log

        settled, stats, log = asyncio.run(drive())
        applied = [r for r in settled if isinstance(r, dict)]
        unexpected = [
            r for r in settled
            if not isinstance(r, (dict, ServeError, ConnectionError))
        ]
        assert not unexpected
        assert len(settled) == 12
        assert len(applied) <= stats["events_processed"] == len(log)

    def test_stop_is_idempotent(self):
        server, _ = make_server()

        async def drive():
            await server.start()
            await server.stop()
            await server.stop()  # second stop is a no-op

        asyncio.run(drive())


class TestClientCancellation:
    def test_abandoned_connection_does_not_wedge_the_loop(self):
        # A client writes one frame and vanishes without reading the answer;
        # the event must still be applied and other clients keep being served.
        server, events = make_server()

        async def drive():
            await server.start()
            try:
                _, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(protocol.encode_frame(
                    protocol.request_frame(events[0]["kind"], events[0], seq=None)
                ))
                await writer.drain()
                writer.close()

                client = await ServeClient.connect(server.host, server.port)
                try:
                    for payload in events[1:6]:
                        if payload["kind"] == "query":
                            await client.query(payload, seq=None)
                        else:
                            await client.update(payload, seq=None)
                    for _ in range(100):
                        stats = await client.stats()
                        if stats["events_processed"] == 6:
                            break
                        await asyncio.sleep(0.01)
                finally:
                    await client.close()
            finally:
                await server.stop()
            return stats

        stats = asyncio.run(drive())
        assert stats["events_processed"] == 6

    def test_cancelled_request_still_applies_exactly_once(self):
        # Client A asks for seq=5, which cannot apply until seqs 0-4 arrive,
        # then cancels and disconnects.  Once the gap fills, the event applies
        # anyway (exactly once) and the writer loop keeps going.
        server, events = make_server()

        async def drive():
            await server.start()
            try:
                first = await ServeClient.connect(server.host, server.port)
                stuck = asyncio.create_task(first.update(
                    next(e for e in events if e["kind"] == "update"), seq=5
                ))
                await asyncio.sleep(0.05)
                stuck.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await stuck
                await first.close()

                second = await ServeClient.connect(server.host, server.port)
                try:
                    for seq in range(5):
                        payload = events[seq]
                        if payload["kind"] == "query":
                            await second.query(payload, seq=seq)
                        else:
                            await second.update(payload, seq=seq)
                    payload = events[6]
                    if payload["kind"] == "query":
                        await second.query(payload, seq=6)
                    else:
                        await second.update(payload, seq=6)
                    for _ in range(100):
                        stats = await second.stats()
                        if stats["events_processed"] == 7:
                            break
                        await asyncio.sleep(0.01)
                finally:
                    await second.close()
            finally:
                await server.stop()
            return stats, server.decision_log

        stats, log = asyncio.run(drive())
        assert stats["events_processed"] == 7  # seqs 0..6, the abandoned one included
        assert len(log) == 7
