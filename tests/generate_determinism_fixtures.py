"""(Re)record the determinism fixtures under ``tests/fixtures/determinism/``.

Usage::

    PYTHONPATH=src python tests/generate_determinism_fixtures.py

The fixtures pin the exact ``RunResult`` payloads (canonical JSON) the
simulation produces for the scenarios in :mod:`determinism_cases`.  They are
the contract the hot-path optimisations are tested against: regenerate them
only when a change is *supposed* to alter simulation results, and say so in
the commit message.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from determinism_cases import CASES, FIXTURE_DIR, canonical  # noqa: E402


def main() -> int:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for name, capture in CASES.items():
        path = FIXTURE_DIR / f"{name}.json"
        payload = capture(jobs=1)
        path.write_text(canonical(payload) + "\n", encoding="utf-8")
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
