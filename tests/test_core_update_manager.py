"""Tests for the interaction graph and the UpdateManager decision logic."""

from __future__ import annotations

import pytest

from repro.core.interaction_graph import InteractionGraph
from repro.core.update_manager import UpdateManager
from tests.conftest import make_query, make_update


class TestInteractionGraph:
    def test_ship_cheap_update_instead_of_expensive_query(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=10.0, timestamp=5.0)
        update = make_update(1, object_id=1, cost=2.0, timestamp=1.0)
        graph.add_query(query)
        graph.add_update(update)
        graph.add_interaction(query, update)
        advice = graph.advise(query)
        assert not advice.ship_query
        assert advice.ship_updates == frozenset({1})

    def test_ship_cheap_query_instead_of_expensive_updates(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=3.0, timestamp=5.0)
        updates = [make_update(i, object_id=1, cost=4.0, timestamp=1.0) for i in range(3)]
        graph.add_query(query)
        for update in updates:
            graph.add_update(update)
            graph.add_interaction(query, update)
        advice = graph.advise(query)
        assert advice.ship_query
        assert advice.ship_updates == frozenset()

    def test_edge_requires_added_vertices(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=3.0, timestamp=5.0)
        update = make_update(1, object_id=1, cost=4.0, timestamp=1.0)
        with pytest.raises(KeyError):
            graph.add_interaction(query, update)
        graph.add_query(query)
        with pytest.raises(KeyError):
            graph.add_interaction(query, update)

    def test_accumulated_query_weight_eventually_justifies_update(self):
        """Repeated cheap queries against one expensive update flip the cover.

        Each individual query is cheaper than the update, so the first
        queries are shipped; once their accumulated weight exceeds the
        update's cost, the update is shipped instead (the paper's central
        cost-amortisation behaviour).
        """
        graph = InteractionGraph()
        update = make_update(1, object_id=1, cost=10.0, timestamp=0.0)
        shipped_update_at = None
        for step in range(1, 8):
            query = make_query(step, object_ids=[1], cost=3.0, timestamp=float(step))
            graph.add_query(query)
            graph.add_update(update)
            graph.add_interaction(query, update)
            advice = graph.advise(query)
            if advice.ship_updates:
                shipped_update_at = step
                break
            assert advice.ship_query
        assert shipped_update_at is not None
        assert shipped_update_at == 4  # 3 + 3 + 3 < 10 <= 3 + 3 + 3 + 3

    def test_remainder_pruning_retires_covered_updates(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=10.0, timestamp=5.0)
        update = make_update(1, object_id=1, cost=2.0, timestamp=1.0)
        graph.add_query(query)
        graph.add_update(update)
        graph.add_interaction(query, update)
        graph.advise(query)
        # The shipped update left the remainder graph; nothing active remains
        # (the query, answered at the cache, is pruned as isolated).
        assert graph.active_update_count == 0
        assert graph.edge_count == 0

    def test_shipped_query_does_not_rejustify_updates(self):
        """A query whose weight was spent cannot keep justifying shipping.

        q1 (10) justifies shipping u1 (4).  A second, disjoint update u2 (8)
        then interacts with a new cheap query q2 (3): the remaining weight
        attributable to u2 is q2's 3 (q1 interacted only with u1), so q2 is
        shipped, not u2.
        """
        graph = InteractionGraph()
        q1 = make_query(1, object_ids=[1], cost=10.0, timestamp=1.0)
        u1 = make_update(1, object_id=1, cost=4.0, timestamp=0.5)
        graph.add_query(q1)
        graph.add_update(u1)
        graph.add_interaction(q1, u1)
        first = graph.advise(q1)
        assert first.ship_updates == frozenset({1})

        q2 = make_query(2, object_ids=[1], cost=3.0, timestamp=2.0)
        u2 = make_update(2, object_id=1, cost=8.0, timestamp=1.5)
        graph.add_query(q2)
        graph.add_update(u2)
        graph.add_interaction(q2, u2)
        second = graph.advise(q2)
        assert second.ship_query
        assert second.ship_updates == frozenset()

    def test_drop_updates_removes_interactions(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=5.0)
        update = make_update(1, object_id=1, cost=5.0, timestamp=1.0)
        graph.add_query(query)
        graph.add_update(update)
        graph.add_interaction(query, update)
        graph.drop_updates([1])
        assert graph.active_update_count == 0
        assert graph.edge_count == 0

    def test_covers_computed_counter(self):
        graph = InteractionGraph()
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=5.0)
        update = make_update(1, object_id=1, cost=5.0, timestamp=1.0)
        graph.add_query(query)
        graph.add_update(update)
        graph.add_interaction(query, update)
        graph.advise(query)
        assert graph.covers_computed == 1


class TestUpdateManager:
    def test_fast_path_when_no_interacting_updates(self):
        manager = UpdateManager()
        query = make_query(1, object_ids=[1], cost=5.0, timestamp=1.0)
        result = manager.decide(query, interacting_updates={})
        assert not result.ship_query
        assert result.ship_update_ids == []

    def test_cheap_updates_are_shipped(self):
        manager = UpdateManager()
        query = make_query(1, object_ids=[1, 2], cost=20.0, timestamp=5.0)
        interacting = {
            1: [make_update(1, object_id=1, cost=2.0, timestamp=1.0)],
            2: [make_update(2, object_id=2, cost=3.0, timestamp=2.0)],
        }
        result = manager.decide(query, interacting)
        assert not result.ship_query
        assert set(result.ship_update_ids) == {1, 2}

    def test_expensive_updates_cause_query_shipping(self):
        manager = UpdateManager()
        query = make_query(1, object_ids=[1], cost=4.0, timestamp=5.0)
        interacting = {1: [make_update(1, object_id=1, cost=50.0, timestamp=1.0)]}
        result = manager.decide(query, interacting)
        assert result.ship_query
        assert result.ship_update_ids == []

    def test_mixed_decision_covers_every_interaction(self):
        """Whatever the cover picks, each query's currency must be satisfiable."""
        manager = UpdateManager()
        query = make_query(1, object_ids=[1, 2], cost=6.0, timestamp=5.0)
        interacting = {
            1: [make_update(1, object_id=1, cost=1.0, timestamp=1.0)],
            2: [make_update(2, object_id=2, cost=100.0, timestamp=2.0)],
        }
        result = manager.decide(query, interacting)
        # Either the query is shipped, or every interacting update is shipped.
        if not result.ship_query:
            assert set(result.ship_update_ids) >= {1, 2}

    def test_forget_updates_delegates_to_graph(self):
        manager = UpdateManager()
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=5.0)
        interacting = {1: [make_update(1, object_id=1, cost=50.0, timestamp=1.0)]}
        manager.decide(query, interacting)
        manager.forget_updates([1])
        assert manager.graph.active_update_count == 0

    def test_stats_counters(self):
        manager = UpdateManager()
        query = make_query(1, object_ids=[1], cost=10.0, timestamp=5.0)
        interacting = {1: [make_update(1, object_id=1, cost=2.0, timestamp=1.0)]}
        manager.decide(query, interacting)
        stats = manager.stats()
        assert stats["decisions"] == 1
        assert stats["updates_shipped"] == 1
        assert stats["queries_shipped"] == 0
