"""Tests for the trace model (events, statistics, JSONL round-trip)."""

from __future__ import annotations

import pytest

from repro.workload.trace import QueryEvent, Trace, TraceView, UpdateEvent
from tests.conftest import make_query, make_update


def build_trace() -> Trace:
    events = [
        UpdateEvent(make_update(1, object_id=1, cost=2.0, timestamp=1.0)),
        QueryEvent(make_query(1, object_ids=[1, 2], cost=5.0, timestamp=2.0)),
        UpdateEvent(make_update(2, object_id=2, cost=3.0, timestamp=3.0)),
        QueryEvent(make_query(2, object_ids=[2], cost=4.0, timestamp=4.0, tolerance=10.0)),
        QueryEvent(make_query(3, object_ids=[3], cost=1.0, timestamp=5.0)),
    ]
    return Trace(events)


class TestTraceBasics:
    def test_events_must_be_time_ordered(self):
        with pytest.raises(ValueError):
            Trace(
                [
                    QueryEvent(make_query(1, object_ids=[1], cost=1.0, timestamp=5.0)),
                    QueryEvent(make_query(2, object_ids=[1], cost=1.0, timestamp=1.0)),
                ]
            )

    def test_counts_and_views(self):
        trace = build_trace()
        assert len(trace) == 5
        assert trace.query_count == 3
        assert trace.update_count == 2
        assert [q.query_id for q in trace.queries()] == [1, 2, 3]
        assert [u.update_id for u in trace.updates()] == [1, 2]

    def test_event_kind_accessors(self):
        trace = build_trace()
        kinds = [event.kind for event in trace]
        assert kinds == ["update", "query", "update", "query", "query"]
        assert trace[0].timestamp == pytest.approx(1.0)

    def test_slicing_returns_view(self):
        trace = build_trace()
        tail = trace.slice_events(2)
        assert isinstance(tail, TraceView)
        assert len(tail) == 3
        assert tail.parent is trace
        assert list(tail) == list(trace)[2:]
        assert isinstance(trace[1:3], Trace)

    def test_slice_view_is_zero_copy_and_nestable(self):
        trace = build_trace()
        view = trace.slice_events(1, 4)
        assert [e.timestamp for e in view] == [2.0, 3.0, 4.0]
        assert view[0] is trace[1]
        assert view[-1] is trace[3]
        nested = view.slice_events(1)
        assert isinstance(nested, TraceView)
        assert nested.parent is trace
        assert list(nested) == list(trace)[2:4]
        assert list(view.iter_tagged()) == trace.tagged_events()[1:4]
        assert view.query_count + view.update_count == len(view)
        assert view.describe()["events"] == 3.0
        materialised = view.materialise()
        assert isinstance(materialised, Trace)
        assert list(materialised) == list(view)

    def test_cost_totals(self):
        trace = build_trace()
        assert trace.total_query_cost() == pytest.approx(10.0)
        assert trace.total_update_cost() == pytest.approx(5.0)

    def test_objects_touched_counts_queries_and_updates(self):
        trace = build_trace()
        touched = trace.objects_touched()
        assert touched[1] == 2  # one update, one query
        assert touched[2] == 3  # one update, two queries
        assert touched[3] == 1

    def test_hotspot_helpers(self):
        trace = build_trace()
        assert trace.query_hotspots(1)[0][0] == 2
        assert trace.update_hotspots(2) == [(1, 1), (2, 1)] or len(trace.update_hotspots(2)) == 2

    def test_describe(self):
        stats = build_trace().describe()
        assert stats["events"] == 5
        assert stats["queries"] == 3
        assert stats["updates"] == 2


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert len(loaded) == len(trace)
        assert loaded.total_query_cost() == pytest.approx(trace.total_query_cost())
        assert loaded.total_update_cost() == pytest.approx(trace.total_update_cost())
        original_query = trace.queries()[1]
        loaded_query = loaded.queries()[1]
        assert loaded_query.object_ids == original_query.object_ids
        assert loaded_query.tolerance == pytest.approx(original_query.tolerance)
        original_update = trace.updates()[0]
        loaded_update = loaded.updates()[0]
        assert loaded_update.object_id == original_update.object_id
        assert loaded_update.kind == original_update.kind

    def test_blank_lines_ignored(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(Trace.from_jsonl(path)) == len(trace)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError):
            Trace.from_jsonl(path)
