"""Real-trace ingestion and calibration (``repro.workload.ingest``).

Covers the adaptation stage (file formats, column aliasing, id mapping,
re-stamping, every rejection path including the gated parquet reader), the
calibration fits (Zipf exponent, traffic fractions, tolerance mix, phase
detection), and the end-to-end guarantee the tentpole promises: the spec
emitted for the committed sample log replays byte-identically streaming vs
materialised, serial vs parallel, and on the multi-cache engine -- because
it is an ordinary declarative scenario.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api, cli
from repro.workload.ingest import (
    CalibrationResult,
    IngestError,
    calibrate,
    ingest_scenario,
    ingest_trace,
)
from repro.workload.trace import QueryEvent, UpdateEvent

#: The committed sample log the docs walkthrough and determinism fixture use.
SAMPLE_LOG = Path(__file__).parent.parent / "examples" / "logs" / "sdss_day.csv"


def write_csv(path: Path, header: str, rows) -> Path:
    path.write_text(
        header + "\n" + "\n".join(rows) + "\n", encoding="utf-8"
    )
    return path


def canonical_payloads(comparison, policies) -> str:
    return json.dumps(
        {name: comparison[name].as_payload() for name in policies}, sort_keys=True
    )


# ----------------------------------------------------------------------
# Adaptation: file -> Trace
# ----------------------------------------------------------------------
class TestIngestTrace:
    def test_csv_basics(self, tmp_path):
        path = write_csv(
            tmp_path / "log.csv",
            "kind,object,cost,timestamp,tolerance",
            [
                "query,alpha,2.0,10,0",
                "update,beta,3.0,20,",
                "query,beta;alpha,4.0,30,5.0",
            ],
        )
        log = ingest_trace(path)
        assert log.object_ids == {"alpha": 1, "beta": 2}
        events = list(log.trace)
        assert [e.timestamp for e in events] == [1.0, 2.0, 3.0]
        first, second, third = events
        assert isinstance(first, QueryEvent)
        assert first.query.object_ids == frozenset({1})
        assert isinstance(second, UpdateEvent)
        assert second.update.object_id == 2
        assert third.query.object_ids == frozenset({1, 2})
        assert third.query.tolerance == 5.0

    def test_rows_sorted_by_log_timestamp_stable_for_ties(self, tmp_path):
        path = write_csv(
            tmp_path / "log.csv",
            "op,oid,bytes,ts",
            [
                "read,late,1.0,90",
                "read,early,1.0,10",
                "write,tie_a,1.0,50",
                "write,tie_b,1.0,50",
            ],
        )
        log = ingest_trace(path)
        events = list(log.trace)
        assert isinstance(events[0], QueryEvent)
        # ids are first-seen in *file* order, so "late" got id 1 even
        # though it replays last.
        assert events[0].query.object_ids == frozenset({2})
        assert [e.update.object_id for e in events[1:3]] == [3, 4]
        assert events[3].query.object_ids == frozenset({1})

    def test_jsonl_with_list_footprints(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"type": "get", "objects": ["a", "b"], "size_mb": 2.5})
            + "\n"
            + json.dumps({"type": "put", "objects": "a", "size_mb": 1.5})
            + "\n",
            encoding="utf-8",
        )
        log = ingest_trace(path)
        assert log.trace.query_count == 1
        assert log.trace.update_count == 1
        assert log.trace.queries()[0].object_ids == frozenset({1, 2})

    def test_missing_columns_reported_with_aliases(self, tmp_path):
        path = write_csv(tmp_path / "log.csv", "when,how", ["now,fast"])
        with pytest.raises(IngestError, match="kind.*objects"):
            ingest_trace(path)

    def test_unknown_kind_reported_with_row(self, tmp_path):
        path = write_csv(tmp_path / "log.csv", "kind,object", ["ponder,x"])
        with pytest.raises(IngestError, match="row 1 .*'ponder'"):
            ingest_trace(path)

    def test_bad_values_rejected(self, tmp_path):
        bad_cost = write_csv(
            tmp_path / "cost.csv", "kind,object,cost", ["query,x,-1"]
        )
        with pytest.raises(IngestError, match="non-positive cost"):
            ingest_trace(bad_cost)
        bad_tolerance = write_csv(
            tmp_path / "tol.csv", "kind,object,tolerance", ["query,x,-2"]
        )
        with pytest.raises(IngestError, match="negative tolerance"):
            ingest_trace(bad_tolerance)
        bad_float = write_csv(
            tmp_path / "float.csv", "kind,object,cost", ["query,x,much"]
        )
        with pytest.raises(IngestError, match="bad cost value"):
            ingest_trace(bad_float)

    def test_unsupported_suffix_and_missing_file(self, tmp_path):
        with pytest.raises(IngestError, match="unsupported log format"):
            ingest_trace(tmp_path / "log.xlsx")
        with pytest.raises(IngestError, match="no such file"):
            ingest_trace(tmp_path / "absent.csv")

    def test_empty_log_rejected(self, tmp_path):
        path = write_csv(tmp_path / "log.csv", "kind,object", [])
        path.write_text("kind,object\n", encoding="utf-8")
        with pytest.raises(IngestError, match="holds no events"):
            ingest_trace(path)

    def test_malformed_jsonl_reported_with_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"type": "get", "objects": "a"}\n{broken\n', encoding="utf-8")
        with pytest.raises(IngestError, match=":2 is not valid JSON"):
            ingest_trace(path)

    def test_parquet_degrades_without_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("pyarrow installed; the gate does not trigger")
        path = tmp_path / "log.parquet"
        path.write_bytes(b"PAR1")
        with pytest.raises(IngestError, match="pyarrow.*CSV or JSONL"):
            ingest_trace(path)


# ----------------------------------------------------------------------
# Calibration: Trace -> knobs
# ----------------------------------------------------------------------
class TestCalibration:
    def _log(self, tmp_path, rows, header="kind,object,cost,tolerance"):
        return ingest_trace(write_csv(tmp_path / "log.csv", header, rows))

    def test_counts_and_fractions(self, tmp_path):
        log = self._log(
            tmp_path,
            [
                "query,a,10.0,0",
                "query,b,30.0,4.0",
                "update,a,20.0,",
            ],
        )
        result = calibrate(log.trace, scale=0.001)
        assert isinstance(result, CalibrationResult)
        assert result.object_count == 2
        assert result.query_count == 2
        assert result.update_count == 1
        from repro.repository.catalog import PAPER_SERVER_SIZE_MB

        server_size = 0.001 * PAPER_SERVER_SIZE_MB
        assert result.query_traffic_fraction == pytest.approx(40.0 / server_size)
        assert result.update_traffic_fraction == pytest.approx(20.0 / server_size)
        assert result.tolerant_fraction == pytest.approx(0.5)
        assert result.tolerance_window == pytest.approx(4.0)

    def test_degenerate_zipf_defaults(self, tmp_path):
        log = self._log(tmp_path, ["query,a,1.0,0", "query,a,1.0,0"])
        assert calibrate(log.trace).zipf_exponent == pytest.approx(1.2)

    def test_zipf_fit_recovers_a_known_exponent(self, tmp_path):
        # Exact Zipf counts with exponent 0.8: count(rank) = C * rank^-0.8.
        rows = []
        for rank in range(1, 21):
            count = max(1, round(2000 * rank ** -0.8))
            rows.extend([f"query,obj{rank},1.0,0"] * count)
        log = self._log(tmp_path, rows)
        assert calibrate(log.trace).zipf_exponent == pytest.approx(0.8, abs=0.1)

    def test_no_queries_is_an_error(self, tmp_path):
        log = self._log(tmp_path, ["update,a,1.0,"])
        with pytest.raises(IngestError, match="no queries"):
            calibrate(log.trace)

    def test_phase_detection_on_the_sample_log(self):
        log = ingest_trace(SAMPLE_LOG)
        result = calibrate(log.trace)
        # The committed log migrates its hotspot half-way: the fitted phase
        # length must be near half the query count, not the whole log.
        assert result.hotspot_phase_length < 0.8 * result.query_count
        assert result.hotspot_phase_length >= 25
        # The log was generated with a Zipf-1.3 focus layered on a uniform
        # background; the fit lands in that neighbourhood.
        assert 0.5 < result.zipf_exponent < 2.0
        assert 0.1 < result.tolerant_fraction < 0.4

    def test_report_lists_every_knob(self):
        result = calibrate(ingest_trace(SAMPLE_LOG).trace)
        report = result.report()
        for knob in result.knobs():
            assert knob in report


# ----------------------------------------------------------------------
# End to end: log -> spec -> byte-identical replay
# ----------------------------------------------------------------------
class TestIngestScenario:
    POLICIES = ("nocache", "vcover")

    def test_spec_round_trips_and_takes_the_stem(self, tmp_path):
        spec, calibration = ingest_scenario(SAMPLE_LOG)
        assert spec.name == "sdss_day"
        assert spec.config.query_count == calibration.query_count
        assert spec.config.zipf_exponent == pytest.approx(
            calibration.zipf_exponent, abs=1e-4
        )
        path = api.save_scenario(spec, tmp_path / "cal.json")
        assert api.load_scenario(path) == spec

    def test_streaming_matches_materialised(self):
        spec, _ = ingest_scenario(SAMPLE_LOG)
        spec = spec.scaled(sample_every=200)
        materialised = api.run_scenario(spec, policies=self.POLICIES)
        streamed = api.run_scenario(spec, policies=self.POLICIES, streaming=True)
        assert canonical_payloads(materialised, self.POLICIES) == (
            canonical_payloads(streamed, self.POLICIES)
        )

    def test_parallel_matches_serial(self):
        spec, _ = ingest_scenario(SAMPLE_LOG)
        spec = spec.scaled(sample_every=200)
        serial = api.run_scenario(
            spec, policies=self.POLICIES, streaming=True, jobs=1
        )
        parallel = api.run_scenario(
            spec, policies=self.POLICIES, streaming=True, jobs=2
        )
        assert canonical_payloads(serial, self.POLICIES) == (
            canonical_payloads(parallel, self.POLICIES)
        )

    def test_multicache_engine_replays_ingested_scenarios(self):
        from repro.experiments.config import build_scenario_stream
        from repro.sim.engine import EngineConfig
        from repro.sim.multicache import run_topology
        from repro.sim.runner import vcover_spec
        from repro.topology.spec import TopologySpec

        spec, _ = ingest_scenario(SAMPLE_LOG)
        catalog, stream = build_scenario_stream(spec.config)
        topology = TopologySpec.uniform(vcover_spec(), 2, cache_fraction=0.3)
        engine = EngineConfig(sample_every=200)
        from_stream = run_topology(topology, catalog, stream, engine)
        from_trace = run_topology(topology, catalog, stream.materialise(), engine)
        assert json.dumps(from_stream.aggregate.as_payload(), sort_keys=True) == (
            json.dumps(from_trace.aggregate.as_payload(), sort_keys=True)
        )


class TestIngestCli:
    def test_ingest_writes_a_runnable_scenario_file(self, tmp_path, capsys):
        out = tmp_path / "day.scenario.json"
        code = cli.main(
            ["ingest", str(SAMPLE_LOG), "--out", str(out), "--name", "day"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert out.exists()
        assert "fitted scenario knobs" in captured.out
        assert str(out) in captured.out
        spec = api.load_scenario(out)
        assert spec.name == "day"
        # The walkthrough promise: the written file replays directly.
        code = cli.main(
            ["scenario", "run", str(out), "--streaming",
             "--policies", "nocache", "vcover"]
        )
        assert code == 0
        assert "vcover" in capsys.readouterr().out

    def test_ingest_error_is_a_clean_exit_code(self, tmp_path, capsys):
        code = cli.main(["ingest", str(tmp_path / "absent.csv")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
