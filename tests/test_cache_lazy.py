"""Tests for the lazy admission wrapper."""

from __future__ import annotations

import pytest

from repro.cache.gds import GreedyDualSize
from repro.cache.lazy import LazyAdmission
from repro.cache.store import CacheStore


def make_lazy(capacity: float = 100.0):
    store = CacheStore(capacity)
    policy = GreedyDualSize()
    return LazyAdmission(policy, store), store, policy


class TestIntentCollection:
    def test_request_records_pending(self):
        lazy, _, _ = make_lazy()
        lazy.request(1, size=10.0, cost=10.0, timestamp=0.0)
        assert lazy.pending_count == 1
        assert lazy.pending_ids() == {1}

    def test_duplicate_requests_merge_keeping_larger_cost(self):
        lazy, _, _ = make_lazy()
        lazy.request(1, size=10.0, cost=5.0, timestamp=0.0)
        lazy.request(1, size=10.0, cost=12.0, timestamp=1.0)
        assert lazy.pending_count == 1
        plan = lazy.flush()
        assert plan.loads[0].cost == pytest.approx(12.0)

    def test_request_for_resident_object_becomes_hit(self):
        lazy, store, policy = make_lazy()
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        policy.on_load(1, size=10.0, cost=10.0, timestamp=0.0)
        before = policy.priority(1)
        lazy.request(1, size=10.0, cost=10.0, timestamp=1.0)
        assert lazy.pending_count == 0
        assert policy.priority(1) >= before

    def test_clear_drops_intents(self):
        lazy, _, _ = make_lazy()
        lazy.request(1, size=10.0, cost=10.0, timestamp=0.0)
        lazy.clear()
        assert lazy.flush().loads == []


class TestFlush:
    def test_flush_empty_returns_empty_plan(self):
        lazy, _, _ = make_lazy()
        plan = lazy.flush()
        assert plan.loads == [] and plan.evictions == [] and plan.skipped == []

    def test_flush_admits_objects_that_fit(self):
        lazy, _, _ = make_lazy(capacity=50.0)
        lazy.request(1, size=20.0, cost=20.0, timestamp=0.0)
        lazy.request(2, size=20.0, cost=20.0, timestamp=0.0)
        plan = lazy.flush()
        assert set(plan.load_ids) == {1, 2}
        assert plan.evictions == []

    def test_flush_skips_object_larger_than_cache(self):
        lazy, _, _ = make_lazy(capacity=50.0)
        lazy.request(1, size=80.0, cost=80.0, timestamp=0.0)
        plan = lazy.flush()
        assert plan.loads == []
        assert [intent.object_id for intent in plan.skipped] == [1]

    def test_flush_plans_evictions_to_make_room(self):
        lazy, store, policy = make_lazy(capacity=50.0)
        store.insert(9, size=40.0, version=0, timestamp=0.0)
        policy.on_load(9, size=40.0, cost=1.0, timestamp=0.0)
        lazy.request(1, size=30.0, cost=300.0, timestamp=1.0)
        plan = lazy.flush()
        assert plan.load_ids == [1]
        assert plan.evictions == [9]

    def test_flush_prefers_higher_density_candidates(self):
        """With room for only one candidate, the denser one wins."""
        lazy, _, _ = make_lazy(capacity=25.0)
        lazy.request(1, size=20.0, cost=10.0, timestamp=0.0)
        lazy.request(2, size=20.0, cost=100.0, timestamp=0.0)
        plan = lazy.flush()
        assert plan.load_ids == [2]
        assert [intent.object_id for intent in plan.skipped] == [1]

    def test_flush_does_not_mutate_store(self):
        lazy, store, _ = make_lazy(capacity=100.0)
        lazy.request(1, size=10.0, cost=10.0, timestamp=0.0)
        lazy.flush()
        assert len(store) == 0

    def test_pending_cleared_after_flush(self):
        lazy, _, _ = make_lazy()
        lazy.request(1, size=10.0, cost=10.0, timestamp=0.0)
        lazy.flush()
        assert lazy.pending_count == 0

    def test_batch_within_one_query_avoids_useless_churn(self):
        """Candidates from one batch never plan to evict each other."""
        lazy, _, _ = make_lazy(capacity=30.0)
        lazy.request(1, size=20.0, cost=40.0, timestamp=0.0)
        lazy.request(2, size=20.0, cost=60.0, timestamp=0.0)
        plan = lazy.flush()
        # Only one of them can be admitted; the other is skipped, NOT loaded
        # and then immediately evicted.
        assert len(plan.load_ids) == 1
        assert len(plan.skipped) == 1
        assert plan.evictions == []
