"""Tests of the load harness and the streaming latency histogram."""

from __future__ import annotations

import math

import pytest

from repro.bench.schema import SCHEMA_ID, validate_payload
from repro.experiments.config import ExperimentConfig
from repro.network.latency import LatencyModel
from repro.serve.harness import (
    SERVABLE_POLICIES,
    format_load_report,
    loadgen_payload,
    run_loadgen,
)
from repro.sim.metrics import StreamingHistogram


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(object_count=16, query_count=80, update_count=80)
    base.update(overrides)
    return ExperimentConfig().scaled(**base)


class TestStreamingHistogram:
    def test_empty_histogram(self):
        histogram = StreamingHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_count_mean_min_max(self):
        histogram = StreamingHistogram()
        for value in (0.001, 0.002, 0.003, 0.010):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(0.004)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.010)

    def test_percentiles_are_bucket_tight(self):
        # With 32 buckets per decade the upper edge overshoots the true
        # quantile by at most a factor of 10**(1/32) ~ 7.5%.
        histogram = StreamingHistogram()
        values = [0.0001 * (1 + i / 100) for i in range(1000)]
        for value in values:
            histogram.record(value)
        exact = sorted(values)[int(math.ceil(0.99 * len(values))) - 1]
        measured = histogram.percentile(0.99)
        assert exact <= measured <= exact * 10 ** (1 / 32)

    def test_percentile_never_exceeds_observed_max(self):
        histogram = StreamingHistogram()
        histogram.record(0.00042)
        for q in (0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == pytest.approx(0.00042)

    def test_out_of_range_values_clamp_to_edge_buckets(self):
        histogram = StreamingHistogram(lower=1e-3, upper=1.0)
        histogram.record(1e-9)
        histogram.record(50.0)
        assert histogram.count == 2
        assert histogram.percentile(0.25) <= 1e-3 * 10 ** (1 / 32)
        assert histogram.percentile(1.0) == pytest.approx(50.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().record(-0.1)

    def test_merge_matches_single_histogram(self):
        one, two, merged_ref = (
            StreamingHistogram(),
            StreamingHistogram(),
            StreamingHistogram(),
        )
        for i in range(200):
            value = 0.0001 * (i + 1)
            (one if i % 2 else two).record(value)
            merged_ref.record(value)
        one.merge(two)
        assert one.count == merged_ref.count
        assert one.mean == pytest.approx(merged_ref.mean)
        for q in (0.5, 0.9, 0.99, 0.999):
            assert one.percentile(q) == merged_ref.percentile(q)

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError):
            StreamingHistogram().merge(StreamingHistogram(buckets_per_decade=8))

    def test_dict_round_trip(self):
        histogram = StreamingHistogram()
        for value in (0.0001, 0.004, 0.2, 3.0):
            histogram.record(value)
        rebuilt = StreamingHistogram.from_dict(histogram.to_dict())
        assert rebuilt.count == histogram.count
        assert rebuilt.mean == pytest.approx(histogram.mean)
        for q in (0.5, 0.99):
            assert rebuilt.percentile(q) == histogram.percentile(q)

    def test_summary_keys(self):
        histogram = StreamingHistogram()
        histogram.record(0.001)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p99", "p999"}

    def test_invalid_quantile_rejected(self):
        histogram = StreamingHistogram()
        histogram.record(0.001)
        for q in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                histogram.percentile(q)


class TestRunLoadgen:
    def test_in_process_loadgen_produces_valid_v2_payload(self):
        report, payload = run_loadgen(
            config=tiny_config(), policy="vcover", clients=3
        )
        validate_payload(payload)
        assert payload["schema"] == SCHEMA_ID
        assert report.events == 160
        assert report.histogram.count == 160
        latency = payload["cases"][0]["policies"][0]["latency"]
        assert latency["count"] == 160
        assert 0 < latency["p50"] <= latency["p99"] <= latency["p999"] <= latency["max"]
        assert payload["cases"][0]["policies"][0]["policy"] == "vcover"

    def test_event_log_deterministic_across_client_counts(self):
        # The lifecycle guarantee: same scenario seed => byte-identical event
        # logs no matter how many clients the load is fanned out over.
        logs = {}
        for clients in (1, 2, 4):
            report, _ = run_loadgen(
                config=tiny_config(), policy="vcover", clients=clients
            )
            logs[clients] = report.event_log
        assert logs[1] == logs[2] == logs[4]
        assert len(logs[1]) == 160
        assert [row[0] for row in logs[1]] == list(range(160))

    def test_latency_model_predictions_ride_along(self):
        report, payload = run_loadgen(
            config=tiny_config(),
            policy="nocache",
            clients=2,
            latency_model=LatencyModel(),
        )
        assert report.predicted is not None
        # Predictions cover queries only; measurements cover every event.
        assert report.predicted.count == 80
        latency = payload["cases"][0]["policies"][0]["latency"]
        assert latency["predicted_p50"] > 0
        assert latency["predicted_p99"] >= latency["predicted_p50"]
        rendered = format_load_report(report)
        assert "predicted" in rendered
        assert "p999" in rendered

    def test_unservable_policy_rejected(self):
        assert "soptimal" not in SERVABLE_POLICIES
        with pytest.raises(ValueError, match="cannot be served"):
            run_loadgen(config=tiny_config(), policy="soptimal")

    def test_payload_round_trips_through_loadgen_payload(self):
        report, payload = run_loadgen(config=tiny_config(), policy="replica", clients=2)
        again = loadgen_payload(report, suite="loadgen")
        assert again["cases"][0]["name"] == payload["cases"][0]["name"]
        assert (
            again["cases"][0]["policies"][0]["latency"]["count"]
            == payload["cases"][0]["policies"][0]["latency"]["count"]
        )
