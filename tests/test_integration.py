"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline -- catalogue, workload generation,
interleaving, the Delta facade / simulation engine, and the decision
policies -- on small but realistic scenarios, and check the global invariants
that hold regardless of workload randomness:

* traffic accounting is consistent between policies, outcomes and the link,
* currency guarantees are never violated,
* the yardstick identities hold (NoCache = total query cost, Replica = total
  update cost),
* results are reproducible for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.core.delta import Delta, DeltaConfig
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig
from repro.sim.runner import compare_policies, default_policy_specs
from repro.workload.trace import QueryEvent, UpdateEvent


@pytest.fixture(scope="module")
def scenario():
    config = ExperimentConfig(
        object_count=30,
        query_count=2000,
        update_count=2000,
        sample_every=400,
        benefit_window=500,
    )
    return build_scenario(config)


@pytest.fixture(scope="module")
def comparison(scenario):
    config = scenario.config
    return compare_policies(
        scenario.catalog,
        scenario.trace,
        cache_fraction=config.cache_fraction,
        specs=default_policy_specs(),
        engine_config=EngineConfig(sample_every=config.sample_every,
                                   measure_from=config.measure_from),
    )


class TestYardstickIdentities:
    def test_nocache_equals_total_query_cost(self, scenario, comparison):
        assert comparison["nocache"].total_traffic == pytest.approx(
            scenario.trace.total_query_cost(), rel=1e-9
        )

    def test_replica_equals_total_update_cost(self, scenario, comparison):
        assert comparison["replica"].total_traffic == pytest.approx(
            scenario.trace.total_update_cost(), rel=1e-9
        )

    def test_replica_answers_every_query(self, comparison):
        assert comparison["replica"].cache_answer_fraction == pytest.approx(1.0)

    def test_nocache_answers_nothing(self, comparison):
        assert comparison["nocache"].cache_answer_fraction == pytest.approx(0.0)


class TestPaperOrdering:
    def test_vcover_beats_both_nocache_and_replica(self, comparison):
        vcover = comparison.traffic_of("vcover")
        assert vcover < comparison.traffic_of("nocache")
        assert vcover < comparison.traffic_of("replica")

    def test_soptimal_is_the_floor(self, comparison):
        soptimal = comparison.traffic_of("soptimal")
        for policy in ("vcover", "benefit"):
            assert soptimal <= comparison.traffic_of(policy) + 1e-6

    def test_every_policy_beats_or_matches_doing_both_naive_things(self, scenario, comparison):
        """No policy should cost more than shipping every query AND update."""
        ceiling = scenario.trace.total_query_cost() + scenario.trace.total_update_cost()
        for policy in comparison.policy_names():
            assert comparison[policy].total_traffic <= ceiling + scenario.catalog.total_size


class TestAccountingConsistency:
    def test_traffic_by_mechanism_sums_to_total(self, comparison):
        for policy in comparison.policy_names():
            run = comparison[policy]
            assert sum(run.traffic_by_mechanism.values()) == pytest.approx(run.total_traffic)

    def test_time_series_ends_at_total(self, comparison):
        for policy in comparison.policy_names():
            run = comparison[policy]
            assert run.time_series.final_total() == pytest.approx(run.total_traffic)

    def test_warmup_traffic_below_total(self, comparison):
        for policy in comparison.policy_names():
            run = comparison[policy]
            assert 0.0 <= run.warmup_traffic <= run.total_traffic + 1e-9


class TestCurrencyGuarantee:
    def test_vcover_never_serves_stale_data_beyond_tolerance(self, scenario):
        """Replaying manually, every cache answer satisfies the query's currency."""
        repository = Repository(scenario.catalog)
        link = NetworkLink()
        policy = VCoverPolicy(repository, scenario.cache_capacity, link, VCoverConfig())
        violations = 0
        for event in scenario.trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            elif isinstance(event, QueryEvent):
                outcome = policy.on_query(event.query)
                if outcome.answered_at_cache:
                    for object_id in event.query.object_ids:
                        if policy.interacting_updates(event.query, object_id):
                            violations += 1
        assert violations == 0


class TestReproducibility:
    def test_same_seed_same_results(self, scenario):
        config = scenario.config
        def run_once():
            fresh = build_scenario(config)
            return compare_policies(
                fresh.catalog, fresh.trace, cache_fraction=config.cache_fraction,
                specs=default_policy_specs(include=("vcover",)),
                engine_config=EngineConfig(sample_every=config.sample_every,
                                           measure_from=config.measure_from),
            ).traffic_of("vcover")
        assert run_once() == pytest.approx(run_once())


class TestDeltaFacadeEndToEnd:
    def test_facade_replay_matches_policy_behaviour(self, scenario):
        delta = Delta(
            scenario.catalog,
            DeltaConfig(policy="vcover", cache_fraction=scenario.config.cache_fraction),
        )
        answered = 0
        for event in scenario.trace[:2000]:
            if isinstance(event, UpdateEvent):
                delta.ingest_update(event.update)
            else:
                if delta.submit_query(event.query).answered_at_cache:
                    answered += 1
        report = delta.traffic_report()
        assert report["total"] == pytest.approx(sum(
            value for key, value in report.items() if key != "total"
        ))
        assert delta.cache_report()["queries_processed"] > 0
