"""Peak-RSS guard for the streaming trace pipeline (the stress bench claim).

The ``repro bench --suite stress`` contract is that a streaming flash-crowd
replay runs in (near-)constant memory: a 10x longer trace must stay under
twice the peak RSS of the shorter one.  This test measures exactly that, at
a pytest-friendly scale, by replaying in fresh subprocesses (RSS high-water
marks are process-wide, so each measurement needs its own process).

Marked ``slow``: CI runs it only in the main-branch job (see the
``-m "not slow"`` split in ``.github/workflows/ci.yml``).  Skipped on
platforms without the POSIX :mod:`resource` module.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

try:
    import resource  # noqa: F401  (availability probe)
except ImportError:  # pragma: no cover - Windows
    resource = None

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        resource is None, reason="peak-RSS measurement needs the POSIX resource module"
    ),
]

#: Script run in the child: streaming flash-crowd replay, then print peak RSS.
_CHILD_SCRIPT = """
import resource, sys
from repro.experiments.config import ExperimentConfig, build_scenario_stream
from repro.sim.engine import EngineConfig
from repro.sim.runner import nocache_spec, run_policy

events = int(sys.argv[1])
config = ExperimentConfig(
    workload_model="flash_crowd",
    query_count=events // 2,
    update_count=events // 2,
    sample_every=5_000,
)
catalog, stream = build_scenario_stream(config)
run = run_policy(
    nocache_spec(), catalog, stream, catalog.total_size * 0.3,
    EngineConfig(sample_every=config.sample_every),
)
assert run.events_processed == events
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak_kb /= 1024.0
print(f"PEAK_RSS_KB={peak_kb:.0f}")
"""


def _peak_rss_kb(events: int) -> float:
    src = str(Path(__file__).resolve().parent.parent / "src")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(events)],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    for line in completed.stdout.splitlines():
        if line.startswith("PEAK_RSS_KB="):
            return float(line.partition("=")[2])
    raise AssertionError(f"no RSS line in child output: {completed.stdout!r}")


def test_streaming_replay_rss_is_bounded():
    """A 10x longer streaming replay stays under 2x the peak RSS."""
    small = _peak_rss_kb(60_000)
    large = _peak_rss_kb(600_000)
    assert small > 0
    # The constant-memory claim of the streaming pipeline: trace length must
    # not show up in the footprint (interpreter + catalogue dominate both).
    assert large < 2.0 * small, (
        f"streaming replay RSS grew with trace length: "
        f"{small:.0f} KB @ 60k events vs {large:.0f} KB @ 600k events"
    )
