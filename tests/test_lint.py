"""Tests of ``repro.lint``: rules, suppressions, report, CLI, self-hosting.

Each rule gets positive (flagged), negative (clean) and suppressed
fixtures, built as throwaway mini-projects under ``tmp_path`` so the
path-scoping logic is exercised exactly as in production.  The suite ends
by self-hosting: the real repository must lint clean at HEAD.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Finding,
    LintInputError,
    LintReport,
    all_rules,
    get_rule,
    run_lint,
)
from repro.lint.suppressions import scan_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path: Path, files: dict) -> Path:
    """Materialise a throwaway project with a pyproject root marker."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    for rel, content in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
    return tmp_path


def lint_rules(project: Path, *paths: str, rule: str | None = None) -> list:
    """Lint ``paths`` inside ``project`` and return the findings."""
    report = run_lint([project / p for p in paths], rule=rule, root=project)
    return list(report.findings)


# ----------------------------------------------------------------------
# DET001: unseeded randomness
# ----------------------------------------------------------------------
class TestDet001:
    def test_module_level_random_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                import random

                def draw():
                    return random.random()
            """,
        })
        findings = lint_rules(project, "src", rule="DET001")
        assert len(findings) == 1
        assert findings[0].rule == "DET001"
        assert "module-level generator" in findings[0].message

    def test_unseeded_random_instance_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                import random

                RNG = random.Random()
            """,
        })
        findings = lint_rules(project, "src", rule="DET001")
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_seeded_random_instance_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                import random

                RNG = random.Random(7)
            """,
        })
        assert lint_rules(project, "src", rule="DET001") == []

    def test_unseeded_numpy_default_rng_flagged_via_alias(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                import numpy as np

                RNG = np.default_rng = None
                BAD = np.random.default_rng()
            """,
        })
        findings = lint_rules(project, "src", rule="DET001")
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_seeded_numpy_default_rng_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                from numpy.random import default_rng

                RNG = default_rng(seed=3)
            """,
        })
        assert lint_rules(project, "src", rule="DET001") == []

    def test_out_of_scope_script_clean(self, tmp_path):
        # DET001 only applies under repro/ -- loose scripts are exempt.
        project = make_project(tmp_path, {
            "scripts/helper.py": """
                import random

                print(random.random())
            """,
        })
        assert lint_rules(project, "scripts", rule="DET001") == []

    def test_suppressed_with_directive(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": """
                import random

                RNG = random.Random()  # repro-lint: disable=DET001
            """,
        })
        report = run_lint([tmp_path / "src"], rule="DET001", root=tmp_path)
        assert report.findings == ()
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# DET002: wall-clock reads
# ----------------------------------------------------------------------
class TestDet002:
    def test_time_time_in_sim_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/clocky.py": """
                import time

                def now():
                    return time.time()
            """,
        })
        findings = lint_rules(project, "src", rule="DET002")
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_uuid4_in_workload_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/ids.py": """
                import uuid

                def fresh():
                    return uuid.uuid4()
            """,
        })
        findings = lint_rules(project, "src", rule="DET002")
        assert len(findings) == 1

    def test_bench_is_allowlisted(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/timer.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        })
        assert lint_rules(project, "src", rule="DET002") == []

    def test_cli_out_of_scope(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/cli_extra.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert lint_rules(project, "src", rule="DET002") == []


# ----------------------------------------------------------------------
# DET003: unordered set iteration
# ----------------------------------------------------------------------
class TestDet003:
    def test_for_over_set_literal_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/emit.py": """
                def emit(sink):
                    pending = {3, 1, 2}
                    for item in pending:
                        sink(item)
            """,
        })
        findings = lint_rules(project, "src", rule="DET003")
        assert len(findings) == 1
        assert "for-loop" in findings[0].message

    def test_sorted_iteration_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/emit.py": """
                def emit(sink):
                    pending = {3, 1, 2}
                    for item in sorted(pending):
                        sink(item)
            """,
        })
        assert lint_rules(project, "src", rule="DET003") == []

    def test_self_attribute_set_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/state.py": """
                class Tracker:
                    def __init__(self):
                        self._live = set()

                    def drain(self):
                        return [x for x in self._live]
            """,
        })
        findings = lint_rules(project, "src", rule="DET003")
        assert len(findings) == 1
        assert "list comprehension" in findings[0].message

    def test_order_insensitive_consumers_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/folds.py": """
                import math

                def fold(values):
                    live = set(values)
                    count = len(live)
                    biggest = max(v for v in live)
                    total = math.fsum(w for w in live)
                    return count, biggest, total
            """,
        })
        assert lint_rules(project, "src", rule="DET003") == []

    def test_sum_over_set_flagged(self, tmp_path):
        # Plain sum is order-sensitive for floats, unlike math.fsum.
        project = make_project(tmp_path, {
            "src/repro/sim/folds.py": """
                def fold(values):
                    live = set(values)
                    return sum(w for w in live)
            """,
        })
        findings = lint_rules(project, "src", rule="DET003")
        assert len(findings) == 1

    def test_unknown_attribute_not_flagged(self, tmp_path):
        # Syntax-only analysis: attributes of unknown type are never sets.
        project = make_project(tmp_path, {
            "src/repro/sim/safe.py": """
                def read(query):
                    return [oid for oid in query.object_ids]
            """,
        })
        assert lint_rules(project, "src", rule="DET003") == []

    def test_out_of_scope_module_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/experiments/report.py": """
                def render():
                    rows = {1, 2}
                    return [r for r in rows]
            """,
        })
        assert lint_rules(project, "src", rule="DET003") == []

    def test_file_level_suppression(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/noisy.py": """
                # repro-lint: disable-file=DET003
                def emit(sink):
                    for item in {3, 1, 2}:
                        sink(item)
            """,
        })
        report = run_lint([tmp_path / "src"], rule="DET003", root=tmp_path)
        assert report.findings == ()
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# PICK001: picklability of submitted callables
# ----------------------------------------------------------------------
class TestPick001:
    def test_lambda_submit_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/tools.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run():
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(lambda: 1).result()
            """,
        })
        findings = lint_rules(project, "src", rule="PICK001")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_function_submit_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/tools.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run():
                    def job():
                        return 1

                    with ProcessPoolExecutor() as pool:
                        return pool.submit(job).result()
            """,
        })
        findings = lint_rules(project, "src", rule="PICK001")
        assert len(findings) == 1
        assert "nested function" in findings[0].message

    def test_module_level_function_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/tools.py": """
                from concurrent.futures import ProcessPoolExecutor

                def job():
                    return 1

                def run():
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(job).result()
            """,
        })
        assert lint_rules(project, "src", rule="PICK001") == []

    def test_policy_spec_lambda_factory_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/specs.py": """
                from repro.sim.runner import PolicySpec

                SPECS = [PolicySpec("lru", factory=lambda link: None)]
            """,
        })
        findings = lint_rules(project, "src", rule="PICK001")
        assert len(findings) == 1
        assert "PolicySpec" in findings[0].message

    def test_applies_inside_tests_too(self, tmp_path):
        project = make_project(tmp_path, {
            "tests/test_tools.py": """
                from concurrent.futures import ProcessPoolExecutor

                def test_submit():
                    with ProcessPoolExecutor() as pool:
                        assert pool.submit(lambda: 1).result() == 1
            """,
        })
        findings = lint_rules(project, "tests", rule="PICK001")
        assert len(findings) == 1


# ----------------------------------------------------------------------
# SLOT001: hot-path __slots__
# ----------------------------------------------------------------------
class TestSlot001:
    def test_unslotted_hot_path_class_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/flow/thing.py": """
                class Arcish:
                    def __init__(self):
                        self.flow = 0.0
            """,
        })
        findings = lint_rules(project, "src", rule="SLOT001")
        assert len(findings) == 1
        assert "Arcish" in findings[0].message

    def test_slots_declaration_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/flow/thing.py": """
                class Arcish:
                    __slots__ = ("flow",)

                    def __init__(self):
                        self.flow = 0.0
            """,
        })
        assert lint_rules(project, "src", rule="SLOT001") == []

    def test_dataclass_slots_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/flow/thing.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True, slots=True)
                class Arcish:
                    flow: float
            """,
        })
        assert lint_rules(project, "src", rule="SLOT001") == []

    def test_exception_class_exempt(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/flow/thing.py": """
                class FlowError(RuntimeError):
                    pass
            """,
        })
        assert lint_rules(project, "src", rule="SLOT001") == []

    def test_cold_module_out_of_scope(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/thing.py": """
                class Knobs:
                    def __init__(self):
                        self.alpha = 1.0
            """,
        })
        assert lint_rules(project, "src", rule="SLOT001") == []


# ----------------------------------------------------------------------
# REG001: cross-artifact registry consistency
# ----------------------------------------------------------------------
_REG_FUZZ = """
    STREAM_CLASSES = {
        "flash_crowd": FlashCrowdStream,
    }
"""
_REG_SCENARIOS = """
    MODEL_NAMES = ("flash_crowd",)

    class ScenarioModelStream:
        seed: int

    class FlashCrowdStream(ScenarioModelStream):
        burst_width: float
"""


class TestReg001:
    def test_consistent_registries_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/fuzz.py": _REG_FUZZ,
            "src/repro/workload/scenarios.py": _REG_SCENARIOS,
            "tests/strategies.py": """
                MODEL_KNOB_STRATEGIES = {
                    "flash_crowd": {"burst_width": None},
                }
            """,
        })
        assert lint_rules(project, "src", "tests", rule="REG001") == []

    def test_missing_strategy_entry_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/fuzz.py": _REG_FUZZ,
            "src/repro/workload/scenarios.py": _REG_SCENARIOS,
            "tests/strategies.py": """
                MODEL_KNOB_STRATEGIES = {}
            """,
        })
        findings = lint_rules(project, "src", rule="REG001")
        assert len(findings) == 1
        assert "no entry" in findings[0].message
        assert findings[0].path == "src/repro/workload/fuzz.py"

    def test_unknown_knob_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/fuzz.py": _REG_FUZZ,
            "src/repro/workload/scenarios.py": _REG_SCENARIOS,
            "tests/strategies.py": """
                MODEL_KNOB_STRATEGIES = {
                    "flash_crowd": {"burst_widht": None},
                }
            """,
        })
        findings = lint_rules(project, "src", rule="REG001")
        assert len(findings) == 1
        assert "burst_widht" in findings[0].message
        assert findings[0].path == "tests/strategies.py"

    def test_model_names_drift_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/workload/fuzz.py": _REG_FUZZ,
            "src/repro/workload/scenarios.py": """
                MODEL_NAMES = ("flash_crowd", "ghost_model")

                class ScenarioModelStream:
                    seed: int

                class FlashCrowdStream(ScenarioModelStream):
                    burst_width: float
            """,
            "tests/strategies.py": """
                MODEL_KNOB_STRATEGIES = {
                    "flash_crowd": {"burst_width": None},
                }
            """,
        })
        findings = lint_rules(project, "src", rule="REG001")
        assert len(findings) == 1
        assert "ghost_model" in findings[0].message

    def test_undocumented_experiment_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/experiments/extra.py": """
                from repro.experiments.registry import register_experiment

                @register_experiment(name="phantom")
                def build():
                    pass
            """,
            "docs/experiments.md": "# Experiments\n\nNothing here.\n",
        })
        findings = lint_rules(project, "src", rule="REG001")
        assert len(findings) == 1
        assert "phantom" in findings[0].message

    def test_documented_experiment_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/experiments/extra.py": """
                from repro.experiments.registry import register_experiment

                @register_experiment(name="phantom")
                def build():
                    pass
            """,
            "docs/experiments.md": "| `phantom` | spooky |\n",
        })
        assert lint_rules(project, "src", rule="REG001") == []

    def test_bare_project_yields_nothing(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": "X = 1\n",
        })
        assert lint_rules(project, "src", rule="REG001") == []


# ----------------------------------------------------------------------
# REG002: policy roster vs docs/policies.md
# ----------------------------------------------------------------------
_REG2_RUNNER = """
    POLICY_NAMES = ("nocache", "vcover")
"""
_REG2_EVICTION = """
    from repro.cache.base import registry

    class GreedyDualSize:
        pass

    registry.register("gds", GreedyDualSize)
"""


class TestReg002:
    def test_documented_roster_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/runner.py": _REG2_RUNNER,
            "src/repro/cache/gds.py": _REG2_EVICTION,
            "docs/policies.md": "| `nocache` | `vcover` | `gds` |\n",
        })
        assert lint_rules(project, "src", rule="REG002") == []

    def test_missing_docs_page_flagged_once(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/runner.py": _REG2_RUNNER,
            "src/repro/cache/gds.py": _REG2_EVICTION,
        })
        findings = lint_rules(project, "src", rule="REG002")
        assert len(findings) == 1
        assert "does not exist" in findings[0].message
        assert findings[0].path == "src/repro/sim/runner.py"

    def test_undocumented_engine_policy_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/runner.py": """
                POLICY_NAMES = ("nocache", "adaptive")
            """,
            "docs/policies.md": "Only `nocache` here.\n",
        })
        findings = lint_rules(project, "src", rule="REG002")
        assert len(findings) == 1
        assert "'adaptive'" in findings[0].message
        assert findings[0].path == "src/repro/sim/runner.py"

    def test_undocumented_eviction_policy_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/cache/lru.py": """
                from repro.cache.base import registry

                class LRUPolicy:
                    pass

                registry.register("lru", LRUPolicy)
            """,
            "docs/policies.md": "Nothing registered yet.\n",
        })
        findings = lint_rules(project, "src", rule="REG002")
        assert len(findings) == 1
        assert "'lru'" in findings[0].message
        assert findings[0].path == "src/repro/cache/lru.py"

    def test_bare_project_yields_nothing(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": "X = 1\n",
        })
        assert lint_rules(project, "src", rule="REG002") == []


# ----------------------------------------------------------------------
# REG003: bench runner phase names vs the payload schema
# ----------------------------------------------------------------------
def _reg3_runner(phases: str) -> str:
    return f"PHASE_KEYS = {phases}\n"


def _reg3_schema(phases: str) -> str:
    return f"PHASE_NAMES = {phases}\n"


class TestReg003:
    def test_matching_tables_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/runner.py": _reg3_runner(
                '("trace_compile", "batch_dispatch", "cover_solve", "metrics")'
            ),
            "src/repro/bench/schema.py": _reg3_schema(
                '("trace_compile", "batch_dispatch", "cover_solve", "metrics")'
            ),
        })
        assert lint_rules(project, "src", rule="REG003") == []

    def test_runner_phase_missing_from_schema_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/runner.py": _reg3_runner(
                '("trace_compile", "gc_pause")'
            ),
            "src/repro/bench/schema.py": _reg3_schema('("trace_compile",)'),
        })
        findings = lint_rules(project, "src", rule="REG003")
        assert len(findings) == 1
        assert "gc_pause" in findings[0].message
        assert findings[0].path == "src/repro/bench/runner.py"

    def test_schema_phase_never_emitted_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/runner.py": _reg3_runner('("trace_compile",)'),
            "src/repro/bench/schema.py": _reg3_schema(
                '("trace_compile", "cover_solve")'
            ),
        })
        findings = lint_rules(project, "src", rule="REG003")
        assert len(findings) == 1
        assert "cover_solve" in findings[0].message
        assert findings[0].path == "src/repro/bench/schema.py"

    def test_missing_runner_table_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/runner.py": "JOBS = 1\n",
            "src/repro/bench/schema.py": _reg3_schema('("trace_compile",)'),
        })
        findings = lint_rules(project, "src", rule="REG003")
        assert len(findings) == 1
        assert "no PHASE_KEYS" in findings[0].message

    def test_same_set_different_order_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/runner.py": _reg3_runner(
                '("cover_solve", "trace_compile")'
            ),
            "src/repro/bench/schema.py": _reg3_schema(
                '("trace_compile", "cover_solve")'
            ),
        })
        findings = lint_rules(project, "src", rule="REG003")
        assert len(findings) == 1
        assert "different orders" in findings[0].message

    def test_bare_project_yields_nothing(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/foo.py": "X = 1\n",
        })
        assert lint_rules(project, "src", rule="REG003") == []


# ----------------------------------------------------------------------
# ASYNC001: blocking calls inside async def in serve code
# ----------------------------------------------------------------------
class TestAsync001:
    def test_blocking_calls_in_coroutine_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/handler.py": """
                import socket
                import time
                from time import sleep


                async def serve_one():
                    time.sleep(0.1)
                    sleep(0.1)
                    sock = socket.create_connection(("host", 80))
                    data = open("state.json").read()
                    return sock, data
            """,
        })
        findings = lint_rules(project, "src", rule="ASYNC001")
        assert len(findings) == 4
        messages = "\n".join(finding.message for finding in findings)
        assert "time.sleep" in messages
        assert "socket.create_connection" in messages
        assert "open" in messages
        assert all("serve_one" in finding.message for finding in findings)

    def test_requests_and_subprocess_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/fetch.py": """
                import requests
                import subprocess


                async def fetch(url):
                    subprocess.run(["true"])
                    return requests.get(url)
            """,
        })
        findings = lint_rules(project, "src", rule="ASYNC001")
        assert len(findings) == 2
        assert any("asyncio.create_subprocess" in f.message for f in findings)

    def test_sync_function_not_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/setup.py": """
                import time


                def warm_up():
                    time.sleep(0.1)
                    return open("config.json").read()
            """,
        })
        assert lint_rules(project, "src", rule="ASYNC001") == []

    def test_async_code_outside_serve_not_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/background.py": """
                import time


                async def tick():
                    time.sleep(1)
            """,
        })
        assert lint_rules(project, "src", rule="ASYNC001") == []

    def test_nested_sync_def_inside_coroutine_not_flagged(self, tmp_path):
        # The nested def's body runs only when called -- typically handed to
        # asyncio.to_thread, which is exactly the recommended fix.
        project = make_project(tmp_path, {
            "src/repro/serve/offload.py": """
                import asyncio
                import time


                async def offload():
                    def blocking():
                        time.sleep(1)
                    await asyncio.to_thread(blocking)
            """,
        })
        assert lint_rules(project, "src", rule="ASYNC001") == []

    def test_nonblocking_async_code_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/clean.py": """
                import asyncio


                async def pause():
                    await asyncio.sleep(0.1)
                    reader, writer = await asyncio.open_connection("host", 80)
                    return reader, writer
            """,
        })
        assert lint_rules(project, "src", rule="ASYNC001") == []

    def test_suppression_directives_respected(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/suppressed.py": """
                import time


                async def pause():
                    time.sleep(0.1)  # repro-lint: disable=ASYNC001
            """,
            "src/repro/serve/filewide.py": """
                # repro-lint: disable-file=ASYNC001
                import time


                async def pause():
                    time.sleep(0.1)
            """,
        })
        assert lint_rules(project, "src", rule="ASYNC001") == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_directive_multiple_rules(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=DET001,SLOT001\n")
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("SLOT001", 1)
        assert not index.is_suppressed("DET002", 1)
        assert not index.is_suppressed("DET001", 2)

    def test_file_directive(self):
        index = scan_suppressions("# repro-lint: disable-file=DET003\nx = 1\n")
        assert index.is_suppressed("DET003", 99)

    def test_all_wildcard(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=all\n")
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("REG001", 1)


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
class TestReport:
    def _report(self, tmp_path) -> LintReport:
        make_project(tmp_path, {
            "src/repro/foo.py": "import random\nX = random.random()\n",
        })
        return run_lint([tmp_path / "src"], root=tmp_path)

    def test_json_round_trip(self, tmp_path):
        report = self._report(tmp_path)
        clone = LintReport.from_dict(json.loads(report.format_json()))
        assert clone == report

    def test_counts_by_rule(self, tmp_path):
        report = self._report(tmp_path)
        assert report.counts_by_rule() == {"DET001": 1}
        assert not report.ok

    def test_findings_are_sorted(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/b.py": "import random\nX = random.random()\n",
            "src/repro/a.py": "import random\nY = random.random()\n",
        })
        report = run_lint([tmp_path / "src"], root=tmp_path)
        assert [f.path for f in report.findings] == [
            "src/repro/a.py", "src/repro/b.py",
        ]

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        make_project(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        report = run_lint([tmp_path / "src"], root=tmp_path)
        assert [f.rule for f in report.findings] == ["PARSE001"]
        assert not report.ok

    def test_unknown_rule_raises_input_error(self, tmp_path):
        make_project(tmp_path, {"src/repro/foo.py": "X = 1\n"})
        with pytest.raises(LintInputError):
            run_lint([tmp_path / "src"], rule="NOPE999", root=tmp_path)

    def test_missing_path_raises_input_error(self, tmp_path):
        with pytest.raises(LintInputError):
            run_lint([tmp_path / "does-not-exist"], root=tmp_path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        make_project(tmp_path, {"src/repro/foo.py": "X = 1\n"})
        assert main(["lint", str(tmp_path / "src")]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        make_project(tmp_path, {
            "src/repro/foo.py": "import random\nX = random.random()\n",
        })
        assert main(["lint", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        make_project(tmp_path, {"src/repro/foo.py": "X = 1\n"})
        assert main(["lint", str(tmp_path / "src"), "--rule", "NOPE999"]) == 2

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2

    def test_json_output_parses(self, tmp_path, capsys):
        make_project(tmp_path, {
            "src/repro/foo.py": "import random\nX = random.random()\n",
        })
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/v1"
        assert payload["summary"]["by_rule"] == {"DET001": 1}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_expected_rules_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert {
            "DET001", "DET002", "DET003", "PICK001", "SLOT001", "REG001", "REG003"
        } <= ids

    def test_lookup_is_case_insensitive(self):
        assert get_rule("det001").id == "DET001"

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(LintInputError):
            get_rule("XYZ000")


# ----------------------------------------------------------------------
# Self-hosting: the repository must lint clean at HEAD
# ----------------------------------------------------------------------
class TestSelfHost:
    def test_repo_lints_clean(self):
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT
        )
        assert report.ok, "\n" + report.format_text()

    def test_repo_lint_is_deterministic(self):
        first = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        second = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        assert first.to_dict() == second.to_dict()
