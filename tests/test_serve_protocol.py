"""Tests of the ``repro.serve`` wire format: frames, outcomes, signatures."""

from __future__ import annotations

import json

import pytest

from repro.core.decoupling import QueryOutcome
from repro.repository.updates import Update, UpdateKind
from repro.serve import protocol


def make_outcome(**overrides) -> QueryOutcome:
    base = dict(
        query_id=7,
        action="answered_at_cache",
        query_shipping_cost=0.0,
        update_shipping_cost=1.5,
        load_cost=2.25,
        loaded_objects=[3, 4],
        evicted_objects=[9],
        shipped_updates=[11, 12],
    )
    base.update(overrides)
    return QueryOutcome(**base)


class TestFrameRoundTrip:
    def test_request_frame_round_trips(self):
        frame = protocol.request_frame("query", {"kind": "query"}, seq=5)
        decoded = protocol.decode_frame(protocol.encode_frame(frame))
        assert decoded == frame

    def test_stats_request_needs_no_payload(self):
        frame = protocol.request_frame("stats")
        decoded = protocol.decode_frame(protocol.encode_frame(frame))
        assert decoded["type"] == "stats"
        assert decoded["seq"] is None

    def test_result_and_error_frames_round_trip(self):
        for frame in (
            protocol.result_frame({"kind": "update", "update_id": 1, "object_id": 2}),
            protocol.stats_response_frame({"events_processed": 3}, seq=1),
            protocol.error_frame("nope", seq=9),
        ):
            assert protocol.decode_frame(protocol.encode_frame(frame)) == frame

    def test_encoding_is_one_compact_sorted_line(self):
        line = protocol.encode_frame(protocol.request_frame("stats"))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_unknown_request_kind_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.request_frame("evict")


class TestDecodeErrors:
    def test_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.decode_frame(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="must be an object"):
            protocol.decode_frame(b"[1, 2]\n")

    def test_rejects_wrong_version(self):
        frame = protocol.request_frame("stats")
        frame["v"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(protocol.ProtocolError, match="protocol version"):
            protocol.decode_frame(protocol.encode_frame(frame))

    def test_rejects_missing_version(self):
        with pytest.raises(protocol.ProtocolError, match="protocol version"):
            protocol.decode_frame(b'{"type": "stats"}\n')

    def test_rejects_unknown_type(self):
        frame = {"v": protocol.PROTOCOL_VERSION, "type": "evict", "payload": {}}
        with pytest.raises(protocol.ProtocolError, match="unknown frame type"):
            protocol.decode_frame(protocol.encode_frame(frame))

    def test_expect_narrows_accepted_types(self):
        frame = protocol.result_frame({"kind": "update", "update_id": 1, "object_id": 2})
        line = protocol.encode_frame(frame)
        protocol.decode_frame(line, expect=protocol.RESPONSE_TYPES)
        with pytest.raises(protocol.ProtocolError, match="unknown frame type"):
            protocol.decode_frame(line, expect=protocol.REQUEST_TYPES)

    @pytest.mark.parametrize("seq", [-1, 1.5, True, "3"])
    def test_rejects_bad_seq(self, seq):
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "type": "query",
            "seq": seq,
            "payload": {"kind": "query"},
        }
        with pytest.raises(protocol.ProtocolError, match="seq"):
            protocol.decode_frame(protocol.encode_frame(frame))

    def test_rejects_missing_payload(self):
        frame = {"v": protocol.PROTOCOL_VERSION, "type": "query", "seq": None}
        with pytest.raises(protocol.ProtocolError, match="payload"):
            protocol.decode_frame(protocol.encode_frame(frame))

    def test_rejects_oversized_frame(self):
        line = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_frame(line)


class TestOutcomeEncoding:
    def test_outcome_round_trips(self):
        outcome = make_outcome()
        rebuilt = protocol.outcome_from_dict(protocol.outcome_to_dict(outcome))
        assert rebuilt == outcome

    def test_outcome_payload_is_json_safe(self):
        payload = protocol.outcome_to_dict(make_outcome())
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == "query"


class TestSignatures:
    def test_query_signature_covers_every_decision(self):
        outcome = make_outcome()
        signature = protocol.outcome_signature(outcome)
        assert signature[0] == "query"
        assert outcome.query_id in signature
        assert [3, 4] in signature and [9] in signature and [11, 12] in signature

    def test_update_signature(self):
        update = Update(
            update_id=5, object_id=2, cost=1.0, timestamp=0.0, kind=UpdateKind.MODIFY
        )
        assert protocol.update_signature(update) == ["update", 5, 2]

    def test_result_signature_matches_server_side_records(self):
        outcome = make_outcome()
        via_wire = protocol.result_signature(protocol.outcome_to_dict(outcome))
        assert via_wire == protocol.outcome_signature(outcome)
        update_payload = {"kind": "update", "update_id": 5, "object_id": 2}
        assert protocol.result_signature(update_payload) == ["update", 5, 2]

    def test_signatures_are_json_round_trippable(self):
        signature = protocol.outcome_signature(make_outcome())
        assert json.loads(json.dumps(signature)) == signature
