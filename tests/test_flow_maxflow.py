"""Unit and oracle tests for the max-flow solvers."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.graph import FlowNetwork
from repro.flow.maxflow import dinic_max_flow, edmonds_karp_max_flow, solve_max_flow


def build_classic_network() -> FlowNetwork:
    """The classic CLRS example network with max flow 23."""
    network = FlowNetwork()
    edges = [
        ("s", "v1", 16), ("s", "v2", 13), ("v1", "v3", 12), ("v2", "v1", 4),
        ("v2", "v4", 14), ("v3", "v2", 9), ("v3", "t", 20), ("v4", "v3", 7),
        ("v4", "t", 4),
    ]
    for tail, head, capacity in edges:
        network.add_edge(tail, head, float(capacity))
    return network


class TestKnownNetworks:
    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_classic_clrs_network(self, solver):
        network = build_classic_network()
        assert solver(network, "s", "t") == pytest.approx(23.0)

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_single_edge(self, solver):
        network = FlowNetwork()
        network.add_edge("s", "t", 7.5)
        assert solver(network, "s", "t") == pytest.approx(7.5)

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_disconnected_sink_gives_zero(self, solver):
        network = FlowNetwork()
        network.add_edge("s", "a", 5.0)
        network.add_vertex("t")
        assert solver(network, "s", "t") == pytest.approx(0.0)

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_missing_vertices_give_zero(self, solver):
        network = FlowNetwork()
        assert solver(network, "s", "t") == pytest.approx(0.0)

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_parallel_paths_sum(self, solver):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "t", 3.0)
        network.add_edge("s", "b", 4.0)
        network.add_edge("b", "t", 4.0)
        assert solver(network, "s", "t") == pytest.approx(7.0)

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_flow_is_feasible_after_solving(self, solver):
        network = build_classic_network()
        solver(network, "s", "t")
        network.check_flow_conservation("s", "t")

    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_infinite_capacity_edges(self, solver):
        network = FlowNetwork()
        network.add_edge("s", "a", 5.0)
        network.add_edge("a", "t", float("inf"))
        assert solver(network, "s", "t") == pytest.approx(5.0)


class TestIncrementalAugmentation:
    def test_flow_can_be_augmented_after_adding_edges(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "t", 3.0)
        assert edmonds_karp_max_flow(network, "s", "t") == pytest.approx(3.0)
        # Add a second path; re-solving augments the existing flow.
        network.add_edge("s", "b", 2.0)
        network.add_edge("b", "t", 2.0)
        assert edmonds_karp_max_flow(network, "s", "t") == pytest.approx(5.0)

    def test_capacity_increase_is_picked_up(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("a", "t", 5.0)
        assert edmonds_karp_max_flow(network, "s", "t") == pytest.approx(1.0)
        network.add_edge("s", "a", 3.0)  # capacity is now 4
        assert edmonds_karp_max_flow(network, "s", "t") == pytest.approx(4.0)


class TestDispatch:
    def test_solve_max_flow_dispatches_by_name(self):
        network = build_classic_network()
        assert solve_max_flow(network, "s", "t", method="dinic") == pytest.approx(23.0)

    def test_push_relabel_method(self):
        network = build_classic_network()
        assert solve_max_flow(network, "s", "t", method="push-relabel") == pytest.approx(
            23.0
        )
        network.check_flow_conservation("s", "t")

    def test_auto_method_small_graph(self):
        network = build_classic_network()
        assert solve_max_flow(network, "s", "t", method="auto") == pytest.approx(23.0)

    def test_unknown_method_raises(self):
        network = build_classic_network()
        with pytest.raises(ValueError):
            solve_max_flow(network, "s", "t", method="simplex")


def random_graph_edges(seed: int, node_count: int, edge_count: int):
    """Deterministic random capacitated edges between numbered nodes."""
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(edge_count):
        tail = int(rng.integers(0, node_count))
        head = int(rng.integers(0, node_count))
        if tail == head:
            continue
        edges.append((tail, head, float(rng.integers(1, 20))))
    return edges


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("solver", [edmonds_karp_max_flow, dinic_max_flow])
    def test_random_graphs_match_networkx(self, seed, solver):
        edges = random_graph_edges(seed, node_count=8, edge_count=24)
        network = FlowNetwork()
        graph = nx.DiGraph()
        for tail, head, capacity in edges:
            network.add_edge(tail, head, capacity)
            if graph.has_edge(tail, head):
                graph[tail][head]["capacity"] += capacity
            else:
                graph.add_edge(tail, head, capacity=capacity)
        network.add_vertex(0)
        network.add_vertex(7)
        graph.add_node(0)
        graph.add_node(7)
        expected = nx.maximum_flow_value(graph, 0, 7) if graph.number_of_edges() else 0.0
        assert solver(network, 0, 7) == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    node_count=st.integers(min_value=3, max_value=7),
)
def test_property_both_solvers_agree(seed, node_count):
    """Edmonds-Karp and Dinic always compute the same max-flow value."""
    edges = random_graph_edges(seed, node_count=node_count, edge_count=3 * node_count)
    network_a = FlowNetwork()
    network_b = FlowNetwork()
    for tail, head, capacity in edges:
        network_a.add_edge(tail, head, capacity)
        network_b.add_edge(tail, head, capacity)
    for network in (network_a, network_b):
        network.add_vertex(0)
        network.add_vertex(node_count - 1)
    value_a = edmonds_karp_max_flow(network_a, 0, node_count - 1)
    value_b = dinic_max_flow(network_b, 0, node_count - 1)
    assert value_a == pytest.approx(value_b)
