"""The adversarial scenario fuzzer (``repro.workload.fuzz``).

Three layers of coverage:

* hypothesis properties over *composed scenarios*: every drawn composition
  (numpy-seeded draws and hypothesis-built specs alike) satisfies the
  structural stream invariants, round-trips through JSON, and replays
  byte-identically streaming vs materialised;
* unit tests for the spec validation, the invariant checker's detection of
  each violation class, and the minimal-repro save/load path;
* the ``fuzzed`` registry experiment end to end, including the
  VCover-lost-to-NoCache regression flagging hook.

The property tests deliberately carry no ``max_examples`` of their own:
the hypothesis profile in ``tests/conftest.py`` governs their budget, so
the nightly ``HYPOTHESIS_PROFILE=fuzz`` CI job searches far deeper than
the quick per-PR profile without any test edits.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Tuple

import pytest
from hypothesis import given

from repro import api
from repro.experiments.fuzzed import maybe_save_regression
from repro.workload.fuzz import (
    ComposedScenarioStream,
    CompositionSpec,
    FuzzError,
    SegmentSpec,
    StreamInvariantError,
    check_stream_invariants,
    draw_composition_spec,
    load_composition,
    save_composition,
    save_regression,
)
from repro.workload.scenarios import CacheAdversaryStream
from repro.workload.trace import (
    QueryEvent,
    TraceEvent,
    TraceStream,
    UpdateEvent,
)
from tests.strategies import composition_specs, fuzz_seeds


def canonical_payloads(comparison, policies) -> str:
    return json.dumps(
        {name: comparison[name].as_payload() for name in policies}, sort_keys=True
    )


# ----------------------------------------------------------------------
# Hypothesis properties over composed scenarios
# ----------------------------------------------------------------------
@given(seed=fuzz_seeds)
def test_property_drawn_compositions_satisfy_invariants(seed):
    """Every numpy-seeded fuzzer draw builds a structurally sound stream."""
    spec = draw_composition_spec(seed, max_events_per_segment=120)
    catalog, stream = spec.realise_stream()
    check_stream_invariants(stream, catalog)


@given(spec=composition_specs())
def test_property_hypothesis_compositions_satisfy_invariants(spec):
    """Arbitrary valid specs (hypothesis-built) also hold the invariants."""
    catalog, stream = spec.realise_stream()
    check_stream_invariants(stream, catalog)


@given(spec=composition_specs())
def test_property_compositions_round_trip_through_json(spec):
    """to_dict/from_dict is the identity, through real JSON text too."""
    assert CompositionSpec.from_dict(spec.to_dict()) == spec
    assert CompositionSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


@given(seed=fuzz_seeds)
def test_property_draws_are_deterministic_in_the_seed(seed):
    """The same seed always yields the same composition (and cache key)."""
    first = draw_composition_spec(seed)
    second = draw_composition_spec(seed)
    assert first == second
    assert first.cache_key() == second.cache_key()


@given(spec=composition_specs(max_segments=2, max_events=40))
def test_property_streaming_matches_materialised_events(spec):
    """The lazy composed stream and its materialised trace never drift."""
    catalog, stream = spec.realise_stream()
    _, trace = spec.realise()
    assert len(stream) == len(trace)
    assert list(stream.iter_tagged()) == list(trace.iter_tagged())
    assert catalog.total_size == spec.build_catalog().total_size


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSegmentSpec:
    def test_unknown_model_rejected(self):
        with pytest.raises(FuzzError, match="tsunami"):
            SegmentSpec(model="tsunami", query_count=10, update_count=10)

    def test_unknown_knob_names_the_key(self):
        with pytest.raises(FuzzError, match="crowd_sise"):
            SegmentSpec(
                model="flash_crowd",
                query_count=10,
                update_count=10,
                knobs=(("crowd_sise", 3),),
            )

    def test_reserved_plumbing_fields_are_not_knobs(self):
        with pytest.raises(FuzzError, match="seed"):
            SegmentSpec(
                model="diurnal", query_count=10, update_count=10,
                knobs=(("seed", 3),),
            )

    def test_non_numeric_knob_rejected(self):
        with pytest.raises(FuzzError, match="amplitude"):
            SegmentSpec(
                model="diurnal", query_count=10, update_count=10,
                knobs=(("amplitude", "big"),),
            )
        with pytest.raises(FuzzError, match="must be a number"):
            SegmentSpec(
                model="diurnal", query_count=10, update_count=10,
                knobs=(("amplitude", True),),
            )

    def test_empty_segment_rejected(self):
        with pytest.raises(FuzzError, match="at least one event"):
            SegmentSpec(model="diurnal", query_count=0, update_count=0)
        with pytest.raises(FuzzError, match="non-negative"):
            SegmentSpec(model="diurnal", query_count=-1, update_count=5)

    def test_knobs_are_canonically_sorted(self):
        segment = SegmentSpec(
            model="update_storm",
            query_count=5,
            update_count=5,
            knobs=(("storm_width", 2), ("storm_count", 1)),
        )
        assert segment.knobs == (("storm_count", 1), ("storm_width", 2))

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FuzzError, match="colour"):
            SegmentSpec.from_dict(
                {"model": "diurnal", "query_count": 5, "update_count": 5,
                 "colour": "red"}
            )
        with pytest.raises(FuzzError, match="missing required key"):
            SegmentSpec.from_dict({"model": "diurnal", "query_count": 5})


class TestCompositionSpec:
    def test_needs_a_segment(self):
        with pytest.raises(FuzzError, match="at least one segment"):
            CompositionSpec(segments=())

    def test_catalogue_knobs_validated(self):
        segment = SegmentSpec(model="diurnal", query_count=5, update_count=5)
        with pytest.raises(FuzzError, match="object_count"):
            CompositionSpec(segments=(segment,), object_count=1)
        with pytest.raises(FuzzError, match="positive"):
            CompositionSpec(segments=(segment,), cache_fraction=0.0)

    def test_cache_key_ignores_the_name(self):
        spec = draw_composition_spec(5)
        renamed = dataclasses.replace(spec, name="elsewhere")
        assert spec.cache_key() == renamed.cache_key()
        assert dataclasses.replace(spec, seed=6).cache_key() != spec.cache_key()

    def test_counts_sum_over_segments(self):
        spec = CompositionSpec(
            segments=(
                SegmentSpec(model="diurnal", query_count=5, update_count=7),
                SegmentSpec(model="update_storm", query_count=11, update_count=13),
            )
        )
        assert spec.query_count == 16
        assert spec.update_count == 20

    def test_adversary_segment_sized_just_past_the_cache(self):
        spec = CompositionSpec(
            segments=(
                SegmentSpec(model="cache_adversary", query_count=20, update_count=20),
            ),
            cache_fraction=0.2,
        )
        catalog = spec.build_catalog()
        stream = spec.build_stream(catalog)
        (adversary,) = stream.streams
        assert isinstance(adversary, CacheAdversaryStream)
        assert adversary.working_set_bytes == pytest.approx(
            catalog.total_size * 0.2 * 1.25
        )

    def test_bad_segment_knob_value_reported_with_its_segment(self):
        spec = CompositionSpec(
            segments=(
                SegmentSpec(
                    model="diurnal", query_count=5, update_count=5,
                    knobs=(("amplitude", 7.0),),
                ),
            )
        )
        with pytest.raises(FuzzError, match="segment 0 .*diurnal.* rejected"):
            spec.build_stream()

    def test_from_dict_rejects_malformed_input(self):
        with pytest.raises(FuzzError, match="segments"):
            CompositionSpec.from_dict({"seed": 3})
        with pytest.raises(FuzzError, match="mood"):
            CompositionSpec.from_dict(
                {"segments": [
                    {"model": "diurnal", "query_count": 5, "update_count": 5}
                 ], "mood": "grim"}
            )


# ----------------------------------------------------------------------
# The composed stream
# ----------------------------------------------------------------------
class TestComposedStream:
    SPEC = CompositionSpec(
        segments=(
            SegmentSpec(model="flash_crowd", query_count=40, update_count=20),
            SegmentSpec(model="cache_adversary", query_count=30, update_count=30),
        ),
        object_count=24,
        seed=9,
    )

    def test_ids_are_globally_unique_and_timestamps_consecutive(self):
        _, stream = self.SPEC.realise_stream()
        events = list(stream.iter_events())
        assert [e.timestamp for e in events] == [float(i + 1) for i in range(120)]
        query_ids = [e.query.query_id for e in events if isinstance(e, QueryEvent)]
        update_ids = [e.update.update_id for e in events if isinstance(e, UpdateEvent)]
        assert len(query_ids) == len(set(query_ids)) == 70
        assert len(update_ids) == len(set(update_ids)) == 50

    def test_update_region_is_the_union_of_segments(self):
        _, stream = self.SPEC.realise_stream()
        region = stream.update_region()
        assert len(region) == len(set(region))
        union = set()
        for segment in stream.streams:
            union |= set(segment.update_region())
        assert set(region) == union

    def test_needs_at_least_one_segment(self):
        catalog = self.SPEC.build_catalog()
        with pytest.raises(FuzzError, match="at least one segment"):
            ComposedScenarioStream(catalog=catalog, streams=())


# ----------------------------------------------------------------------
# The invariant checker catches each violation class
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StubStream(TraceStream):
    events: Tuple[TraceEvent, ...]
    advertised: int

    def __len__(self) -> int:
        return self.advertised

    def iter_events(self):
        return iter(self.events)


class TestInvariantChecker:
    def _catalog(self):
        return draw_composition_spec(1, object_count=24).build_catalog()

    def _events(self):
        catalog, stream = draw_composition_spec(
            1, object_count=24, max_events_per_segment=60
        ).realise_stream()
        return catalog, tuple(stream.iter_events())

    def test_accepts_a_sound_stream(self):
        catalog, events = self._events()
        check_stream_invariants(_StubStream(events, len(events)), catalog)

    def test_rejects_non_consecutive_timestamps(self):
        catalog, events = self._events()
        broken = events[:1] + events[2:]
        with pytest.raises(StreamInvariantError, match="timestamp"):
            check_stream_invariants(_StubStream(broken, len(broken)), catalog)

    def test_rejects_duplicate_ids(self):
        catalog, events = self._events()
        queries = [e for e in events if isinstance(e, QueryEvent)]
        clone = QueryEvent(
            dataclasses.replace(queries[0].query, timestamp=float(len(events) + 1))
        )
        broken = events + (clone,)
        with pytest.raises(StreamInvariantError, match="duplicate query id"):
            check_stream_invariants(_StubStream(broken, len(broken)), catalog)

    def test_rejects_unknown_object_ids(self):
        catalog, events = self._events()
        queries = [e for e in events if isinstance(e, QueryEvent)]
        rogue = QueryEvent(
            dataclasses.replace(
                queries[0].query,
                query_id=10**6,
                object_ids=frozenset({10**6}),
                timestamp=float(len(events) + 1),
            )
        )
        broken = events + (rogue,)
        with pytest.raises(StreamInvariantError, match="missing from the catalogue"):
            check_stream_invariants(_StubStream(broken, len(broken)), catalog)

    def test_rejects_non_positive_costs(self):
        catalog, events = self._events()
        queries = [e for e in events if isinstance(e, QueryEvent)]
        cheap = QueryEvent(
            dataclasses.replace(
                queries[0].query, query_id=10**6, cost=0.0,
                timestamp=float(len(events) + 1),
            )
        )
        broken = events + (cheap,)
        with pytest.raises(StreamInvariantError, match="cost"):
            check_stream_invariants(_StubStream(broken, len(broken)), catalog)

    def test_rejects_wrong_advertised_length(self):
        catalog, events = self._events()
        with pytest.raises(StreamInvariantError, match="advertises"):
            check_stream_invariants(_StubStream(events, len(events) + 1), catalog)


# ----------------------------------------------------------------------
# Minimal-repro files
# ----------------------------------------------------------------------
class TestReproFiles:
    def test_save_load_round_trip(self, tmp_path):
        spec = draw_composition_spec(17)
        path = save_composition(spec, tmp_path / "repro.json")
        assert load_composition(path) == spec

    def test_save_regression_names_after_the_spec(self, tmp_path):
        spec = draw_composition_spec(23)
        path = save_regression(spec, tmp_path / "repros")
        assert path == tmp_path / "repros" / f"{spec.name}.json"
        assert load_composition(path) == spec

    def test_load_errors_are_fuzz_errors(self, tmp_path):
        with pytest.raises(FuzzError, match="cannot read"):
            load_composition(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(FuzzError, match="not valid JSON"):
            load_composition(bad)

    def test_draw_rejects_bad_max_segments(self):
        with pytest.raises(FuzzError, match="max_segments"):
            draw_composition_spec(1, max_segments=0)


class _StubComparison:
    def __init__(self, traffic):
        self._traffic = traffic

    def traffic_of(self, name: str) -> float:
        return self._traffic[name]


class TestRegressionFlagging:
    SPEC = draw_composition_spec(31, max_events_per_segment=60)

    def test_vcover_loss_saves_a_repro_file(self, tmp_path):
        comparison = _StubComparison({"vcover": 120.0, "nocache": 100.0})
        path = maybe_save_regression(self.SPEC, comparison, tmp_path)
        assert path is not None
        assert load_composition(path) == self.SPEC

    def test_vcover_win_saves_nothing(self, tmp_path):
        comparison = _StubComparison({"vcover": 80.0, "nocache": 100.0})
        assert maybe_save_regression(self.SPEC, comparison, tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_missing_policy_or_disabled_dir_saves_nothing(self, tmp_path):
        losing = _StubComparison({"vcover": 120.0, "nocache": 100.0})
        assert maybe_save_regression(
            self.SPEC, _StubComparison({"vcover": 1.0}), tmp_path
        ) is None
        assert maybe_save_regression(self.SPEC, losing, None) is None


# ----------------------------------------------------------------------
# Replay byte-identity and the registry experiment
# ----------------------------------------------------------------------
class TestFuzzedReplay:
    POLICIES = ("nocache", "vcover")
    SPEC = draw_composition_spec(3, max_events_per_segment=120)

    def test_streaming_matches_materialised_payloads(self):
        materialised = api.run_scenario(self.SPEC, policies=self.POLICIES)
        streamed = api.run_scenario(
            self.SPEC, policies=self.POLICIES, streaming=True
        )
        assert canonical_payloads(materialised, self.POLICIES) == (
            canonical_payloads(streamed, self.POLICIES)
        )

    def test_parallel_matches_serial(self):
        serial = api.run_scenario(
            self.SPEC, policies=self.POLICIES, streaming=True, jobs=1
        )
        parallel = api.run_scenario(
            self.SPEC, policies=self.POLICIES, streaming=True, jobs=2
        )
        assert canonical_payloads(serial, self.POLICIES) == (
            canonical_payloads(parallel, self.POLICIES)
        )

    def test_multicache_engine_replays_compositions(self):
        from repro.sim.engine import EngineConfig
        from repro.sim.multicache import run_topology
        from repro.sim.runner import vcover_spec
        from repro.topology.spec import TopologySpec

        catalog, stream = self.SPEC.realise_stream()
        topology = TopologySpec.uniform(
            vcover_spec(), 2, cache_fraction=self.SPEC.cache_fraction
        )
        engine = EngineConfig(sample_every=100)
        from_stream = run_topology(topology, catalog, stream, engine)
        from_trace = run_topology(topology, catalog, stream.materialise(), engine)
        assert json.dumps(from_stream.aggregate.as_payload(), sort_keys=True) == (
            json.dumps(from_trace.aggregate.as_payload(), sort_keys=True)
        )

    def test_loaded_repro_replays_identically(self, tmp_path):
        path = save_composition(self.SPEC, tmp_path / "case.json")
        direct = api.run_scenario(self.SPEC, policies=self.POLICIES, streaming=True)
        reloaded = api.run_scenario(
            api.load_fuzzed_scenario(path), policies=self.POLICIES, streaming=True
        )
        assert canonical_payloads(direct, self.POLICIES) == (
            canonical_payloads(reloaded, self.POLICIES)
        )


class TestFuzzedExperiment:
    def test_runs_from_a_config_seed(self, tmp_path):
        result = api.run_experiment(
            "fuzzed",
            overrides={
                "seed": 5,
                "policies": ("nocache", "vcover"),
                "max_segments": 1,
                "repro_dir": str(tmp_path / "repros"),
            },
        )
        assert result.spec == draw_composition_spec(5, max_segments=1)
        assert result.streaming is True
        assert result.comparison.traffic_of("nocache") > 0
        rendered = api.format_result("fuzzed", result)
        assert "Fuzzed composition" in rendered
        assert result.models in rendered
        if result.regression_path is not None:
            assert "REGRESSION" in rendered
            assert load_composition(result.regression_path) == result.spec

    def test_draw_api_matches_experiment_draw(self):
        assert api.draw_fuzzed_scenario(5, max_segments=1) == (
            draw_composition_spec(5, max_segments=1)
        )
