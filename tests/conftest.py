"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

from repro.network.link import NetworkLink

# Hypothesis profiles: "ci" is the quick default every run uses; "fuzz" is
# the heavy profile the nightly/main-only CI job selects via
# HYPOTHESIS_PROFILE=fuzz.  Tests that pin max_examples in their own
# @settings keep their pinned budget; the fuzzer properties deliberately
# leave it to the profile so the heavy job searches much deeper.
hypothesis_settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile(
    "fuzz",
    max_examples=250,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
from repro.repository.objects import DataObject, ObjectCatalog
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def py_rng() -> random.Random:
    """A seeded stdlib generator."""
    return random.Random(12345)


@pytest.fixture
def small_catalog() -> ObjectCatalog:
    """Five objects of assorted sizes totalling 100 MB."""
    return ObjectCatalog(
        [
            DataObject(object_id=1, size=10.0, density=1.0),
            DataObject(object_id=2, size=20.0, density=2.0),
            DataObject(object_id=3, size=30.0, density=3.0),
            DataObject(object_id=4, size=15.0, density=1.5),
            DataObject(object_id=5, size=25.0, density=2.5),
        ]
    )


@pytest.fixture
def repository(small_catalog: ObjectCatalog) -> Repository:
    """A repository over the small catalogue."""
    return Repository(small_catalog)


@pytest.fixture
def link() -> NetworkLink:
    """A traffic ledger with per-transfer records enabled."""
    return NetworkLink(keep_records=True)


def make_query(
    query_id: int,
    object_ids,
    cost: float,
    timestamp: float,
    tolerance: float = 0.0,
) -> Query:
    """Convenience query constructor used across test modules."""
    return Query(
        query_id=query_id,
        object_ids=frozenset(object_ids),
        cost=cost,
        timestamp=timestamp,
        tolerance=tolerance,
    )


def make_update(update_id: int, object_id: int, cost: float, timestamp: float) -> Update:
    """Convenience update constructor used across test modules."""
    return Update(update_id=update_id, object_id=object_id, cost=cost, timestamp=timestamp)
