"""Tests for the sky partitioner (trixels -> data objects)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sky.partition import DensityBump, SkyDensityModel, SkyPartition, build_partition
from repro.sky.regions import CircularRegion, SkyPoint, random_sky_point


class TestDensityModel:
    def test_background_must_be_positive(self):
        with pytest.raises(ValueError):
            SkyDensityModel(bumps=[], background=0.0)

    def test_density_is_at_least_background(self):
        model = SkyDensityModel.survey_default(seed=1)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert model.value_at(random_sky_point(rng)) >= 1.0

    def test_bump_peaks_at_its_center(self):
        bump = DensityBump(center=SkyPoint(ra=10.0, dec=10.0), sigma=5.0, amplitude=4.0)
        at_center = bump.value_at(SkyPoint(ra=10.0, dec=10.0))
        away = bump.value_at(SkyPoint(ra=100.0, dec=-40.0))
        assert at_center == pytest.approx(4.0)
        assert away < 0.1

    def test_survey_default_reproducible(self):
        a = SkyDensityModel.survey_default(seed=5)
        b = SkyDensityModel.survey_default(seed=5)
        point = SkyPoint(ra=42.0, dec=7.0)
        assert a.value_at(point) == pytest.approx(b.value_at(point))


class TestSkyPartition:
    def test_invalid_object_count(self):
        with pytest.raises(ValueError):
            SkyPartition(object_count=0)

    def test_mesh_level_must_have_enough_trixels(self):
        with pytest.raises(ValueError):
            SkyPartition(object_count=100, mesh_level=0)

    def test_every_trixel_assigned_and_all_objects_used(self):
        partition = SkyPartition(object_count=10)
        seen = set()
        for object_id in range(1, 11):
            trixels = partition.trixels_of_object(object_id)
            assert trixels, f"object {object_id} has no trixels"
            seen.update(t.name for t in trixels)
        assert len(seen) == len(partition.mesh)

    def test_object_of_point_is_consistent_with_trixel_assignment(self):
        partition = SkyPartition(object_count=12)
        rng = np.random.default_rng(4)
        for _ in range(30):
            point = random_sky_point(rng)
            object_id = partition.object_of_point(point)
            assert 1 <= object_id <= 12

    def test_objects_of_region_returns_sorted_ids(self):
        partition = SkyPartition(object_count=20)
        region = CircularRegion(center=SkyPoint(ra=50.0, dec=20.0), radius=10.0)
        objects = partition.objects_of_region(region)
        assert objects == sorted(objects)
        assert objects, "a 10-degree region must overlap at least one object"

    def test_point_object_is_among_region_objects(self):
        partition = SkyPartition(object_count=20)
        center = SkyPoint(ra=220.0, dec=-15.0)
        region = CircularRegion(center=center, radius=5.0)
        assert partition.object_of_point(center) in partition.objects_of_region(region)

    def test_object_center_is_valid_point(self):
        partition = SkyPartition(object_count=8)
        center = partition.object_center(3)
        assert -90.0 <= center.dec <= 90.0

    def test_densities_positive_for_all_objects(self):
        partition = build_partition(object_count=16)
        densities = partition.object_densities()
        assert set(densities) == set(range(1, 17))
        assert all(value > 0 for value in densities.values())

    def test_build_catalog_matches_total_size(self):
        partition = build_partition(object_count=16)
        catalog = partition.build_catalog(total_size=400.0, min_size=1.0)
        assert catalog.total_size == pytest.approx(400.0, rel=1e-6)
        assert len(catalog) == 16

    def test_build_partition_is_reproducible(self):
        first = build_partition(object_count=10, density_seed=3).object_densities()
        second = build_partition(object_count=10, density_seed=3).object_densities()
        assert first == second
