"""Tests for the network cost models and the traffic ledger."""

from __future__ import annotations

import pytest

from repro.network.cost import AffineCostModel, LinearCostModel
from repro.network.link import Mechanism, NetworkLink


class TestCostModels:
    def test_linear_cost_is_proportional(self):
        model = LinearCostModel()
        assert model.cost(10.0) == pytest.approx(10.0)
        assert model.cost(0.0) == pytest.approx(0.0)

    def test_linear_cost_with_factor(self):
        model = LinearCostModel(factor=2.0)
        assert model.cost(10.0) == pytest.approx(20.0)

    def test_linear_rejects_negative_size(self):
        with pytest.raises(ValueError):
            LinearCostModel().cost(-1.0)

    def test_affine_adds_overhead_except_for_empty_transfers(self):
        model = AffineCostModel(factor=1.0, overhead=0.5)
        assert model.cost(10.0) == pytest.approx(10.5)
        assert model.cost(0.0) == pytest.approx(0.0)

    def test_cost_of_many(self):
        model = LinearCostModel()
        assert model.cost_of_many([1.0, 2.0, 3.0]) == pytest.approx(6.0)


class TestNetworkLink:
    def test_charges_accumulate_by_mechanism(self):
        link = NetworkLink()
        link.ship_query(5.0, timestamp=1.0, query_id=1)
        link.ship_update(2.0, timestamp=2.0, object_id=3, update_id=7)
        link.load_object(10.0, timestamp=3.0, object_id=3)
        totals = link.total_by_mechanism()
        assert totals[Mechanism.QUERY_SHIPPING] == pytest.approx(5.0)
        assert totals[Mechanism.UPDATE_SHIPPING] == pytest.approx(2.0)
        assert totals[Mechanism.OBJECT_LOADING] == pytest.approx(10.0)
        assert link.total_cost == pytest.approx(17.0)

    def test_counts_by_mechanism(self):
        link = NetworkLink()
        link.ship_query(1.0, timestamp=0.0)
        link.ship_query(1.0, timestamp=0.0)
        assert link.count_by_mechanism()[Mechanism.QUERY_SHIPPING] == 2

    def test_unknown_mechanism_rejected(self):
        link = NetworkLink()
        with pytest.raises(ValueError):
            link.charge("teleport", 1.0, timestamp=0.0)

    def test_records_kept_only_when_requested(self):
        silent = NetworkLink()
        silent.ship_query(1.0, timestamp=0.0)
        assert silent.records == []
        verbose = NetworkLink(keep_records=True)
        verbose.ship_query(1.0, timestamp=0.0, query_id=42)
        assert len(verbose.records) == 1
        assert verbose.records[0].event_id == 42

    def test_reset_clears_everything(self):
        link = NetworkLink(keep_records=True)
        link.load_object(4.0, timestamp=0.0, object_id=1)
        link.reset()
        assert link.total_cost == pytest.approx(0.0)
        assert link.records == []

    def test_custom_cost_model_applies(self):
        link = NetworkLink(cost_model=LinearCostModel(factor=3.0))
        link.ship_query(2.0, timestamp=0.0)
        assert link.total_cost == pytest.approx(6.0)
