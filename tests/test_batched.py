"""Tests for the columnar trace compilation and batched replay executors.

Three layers:

* :class:`repro.workload.columns.TraceColumns` -- the compiled layout and
  its zero-copy windows,
* byte-equivalence -- the batched executors must produce payloads identical
  to the scalar loop's for the same run (the load-bearing guarantee behind
  the determinism fixtures),
* eligibility -- every gating condition in ``select_batched_executor`` must
  actually fall back to the scalar loop.
"""

from __future__ import annotations

import json

import pytest

from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.cost import AffineCostModel, LinearCostModel, TrafficCostModel
from repro.network.link import Mechanism, NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim import engine as engine_module
from repro.sim.batched import select_batched_executor
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.workload.columns import COLUMNS_AVAILABLE, TraceColumns
from repro.workload.trace import QueryEvent, Trace, UpdateEvent
from tests.conftest import make_query, make_update

numpy = pytest.importorskip("numpy")


@pytest.fixture
def catalog():
    return ObjectCatalog.from_sizes({oid: float(oid) for oid in range(1, 21)})


def mixed_trace(events: int = 200) -> Trace:
    """Deterministic trace with multi-object queries and repeated updates."""
    items = []
    for index in range(events):
        timestamp = float(index + 1)
        if index % 4 == 3:
            items.append(
                UpdateEvent(
                    make_update(
                        index, object_id=1 + index % 20, cost=1.5, timestamp=timestamp
                    )
                )
            )
        else:
            ids = [1 + index % 20, 1 + (index * 7) % 20]
            items.append(
                QueryEvent(
                    make_query(index, object_ids=ids, cost=2.5, timestamp=timestamp)
                )
            )
    return Trace(items)


class TestTraceColumns:
    def test_columns_available(self):
        assert COLUMNS_AVAILABLE

    def test_layout_matches_trace(self):
        trace = mixed_trace(40)
        columns = trace.columns()
        assert len(columns) == 40
        assert columns.update_count == trace.update_count
        assert columns.query_count == trace.query_count
        # prefix[i] counts updates among events [0, i).
        assert int(columns.update_prefix[0]) == 0
        assert int(columns.update_prefix[-1]) == trace.update_count
        running = 0
        for index, (is_update, payload) in enumerate(trace.iter_tagged()):
            assert int(columns.update_prefix[index]) == running
            assert columns.timestamps[index] == payload.timestamp
            assert columns.costs[index] == payload.cost
            assert bool(columns.is_update[index]) == is_update
            if is_update:
                running += 1

    def test_query_csr_is_sorted_per_query(self):
        trace = mixed_trace(40)
        columns = trace.columns()
        offsets = columns.query_object_offsets
        for position, query in enumerate(trace.queries()):
            flat = columns.query_object_ids[
                int(offsets[position]) : int(offsets[position + 1])
            ]
            assert flat.tolist() == sorted(query.object_ids)

    def test_columns_cached_on_trace(self):
        trace = mixed_trace(10)
        assert trace.columns() is trace.columns()

    def test_window_matches_sliced_trace(self):
        trace = mixed_trace(60)
        window = trace.columns().window(13, 47)
        sliced = Trace(list(trace.iter_events())[13:47]).columns()
        for name in TraceColumns.__slots__:
            numpy.testing.assert_array_equal(
                getattr(window, name), getattr(sliced, name), err_msg=name
            )

    def test_window_of_view(self):
        trace = mixed_trace(60)
        view = trace.slice_events(10, 50)
        columns = view.columns()
        assert len(columns) == 40
        assert columns.update_count == view.update_count

    def test_window_bounds_checked(self):
        columns = mixed_trace(10).columns()
        with pytest.raises(ValueError):
            columns.window(5, 12)
        with pytest.raises(ValueError):
            columns.window(-1, 5)

    def test_pickled_trace_recompiles(self):
        import pickle

        trace = mixed_trace(10)
        trace.columns()
        clone = pickle.loads(pickle.dumps(trace))
        assert len(clone.columns()) == 10


def run_once(catalog, trace, policy_type, *, scalar=False, monkeypatch=None,
             measure_from=0, sample_every=25):
    repository = Repository(catalog, keep_update_log=False)
    link = NetworkLink()
    if policy_type is NoCachePolicy:
        policy = NoCachePolicy(repository, 0.0, link)
    else:
        policy = ReplicaPolicy(repository, float("inf"), link)
    engine = SimulationEngine(
        repository, EngineConfig(sample_every=sample_every, measure_from=measure_from)
    )
    if scalar:
        monkeypatch.setattr(
            engine_module, "select_batched_executor", lambda *args: None
        )
    result = engine.run(policy, trace, link)
    return result, repository


def canonical(result) -> str:
    return json.dumps(result.as_payload(), sort_keys=True, separators=(",", ":"))


class TestByteEquivalence:
    @pytest.mark.parametrize("policy_type", (NoCachePolicy, ReplicaPolicy))
    @pytest.mark.parametrize("measure_from", (0, 60, 75))
    def test_batched_matches_scalar(self, catalog, monkeypatch, policy_type,
                                    measure_from):
        trace = mixed_trace(200)
        batched, batched_repo = run_once(
            catalog, trace, policy_type, measure_from=measure_from
        )
        scalar, scalar_repo = run_once(
            catalog, trace, policy_type, scalar=True, monkeypatch=monkeypatch,
            measure_from=measure_from,
        )
        assert canonical(batched) == canonical(scalar)
        assert batched_repo.stats() == scalar_repo.stats()

    @pytest.mark.parametrize("policy_type", (NoCachePolicy, ReplicaPolicy))
    def test_batched_matches_scalar_on_generated_workload(
        self, monkeypatch, policy_type
    ):
        scenario = build_scenario(
            ExperimentConfig(object_count=50, query_count=400, update_count=400, seed=3)
        )
        catalog, trace = scenario.catalog, scenario.trace
        batched, _ = run_once(catalog, trace, policy_type, sample_every=100)
        scalar, _ = run_once(
            catalog, trace, policy_type, scalar=True, monkeypatch=monkeypatch,
            sample_every=100,
        )
        assert canonical(batched) == canonical(scalar)

    def test_batched_matches_scalar_on_trace_view(self, catalog, monkeypatch):
        view = mixed_trace(200).slice_events(37, 163)
        batched, _ = run_once(catalog, view, ReplicaPolicy)
        scalar, _ = run_once(
            catalog, view, ReplicaPolicy, scalar=True, monkeypatch=monkeypatch
        )
        assert canonical(batched) == canonical(scalar)

    def test_replica_store_state_matches(self, catalog, monkeypatch):
        trace = mixed_trace(200)

        def store_state(policy_type, scalar):
            repository = Repository(catalog, keep_update_log=False)
            link = NetworkLink()
            policy = ReplicaPolicy(repository, float("inf"), link)
            engine = SimulationEngine(repository, EngineConfig(sample_every=50))
            if scalar:
                monkeypatch.setattr(
                    engine_module, "select_batched_executor", lambda *args: None
                )
            engine.run(policy, trace, link)
            return {
                oid: (record.version, record.hits, record.last_hit_at)
                for oid in catalog.object_ids
                for record in [policy.store.get(oid)]
            }

        assert store_state(ReplicaPolicy, scalar=False) == store_state(
            ReplicaPolicy, scalar=True
        )


class TestEligibility:
    def select(self, catalog, *, policy=None, trace=None, link=None,
               repository=None):
        repository = repository or Repository(catalog, keep_update_log=False)
        link = link if link is not None else NetworkLink()
        policy = policy or NoCachePolicy(repository, 0.0, link)
        trace = trace if trace is not None else mixed_trace(20)
        return select_batched_executor(policy, trace, repository, link)

    def test_yardsticks_selected(self, catalog):
        repository = Repository(catalog, keep_update_log=False)
        link = NetworkLink()
        assert self.select(
            catalog, policy=NoCachePolicy(repository, 0.0, link),
            repository=repository, link=link,
        ) is not None
        assert self.select(
            catalog, policy=ReplicaPolicy(repository, float("inf"), link),
            repository=repository, link=link,
        ) is not None

    def test_subclass_falls_back(self, catalog):
        class AuditedNoCache(NoCachePolicy):
            pass

        repository = Repository(catalog, keep_update_log=False)
        link = NetworkLink()
        assert self.select(
            catalog, policy=AuditedNoCache(repository, 0.0, link),
            repository=repository, link=link,
        ) is None

    def test_record_keeping_link_falls_back(self, catalog):
        assert self.select(catalog, link=NetworkLink(keep_records=True)) is None

    def test_update_log_repository_falls_back(self, catalog):
        assert self.select(
            catalog, repository=Repository(catalog, keep_update_log=True)
        ) is None

    def test_streaming_trace_falls_back(self, catalog):
        trace = mixed_trace(20)

        class StreamOnly:
            def __len__(self):
                return len(trace)

            def iter_tagged(self):
                return trace.iter_tagged()

        assert self.select(catalog, trace=StreamOnly()) is None

    def test_unvectorised_cost_model_falls_back(self, catalog):
        class OpaqueModel(TrafficCostModel):
            def cost(self, size: float) -> float:
                return size

        link = NetworkLink(cost_model=OpaqueModel())
        assert self.select(catalog, link=link) is None


class TestBatchedPrimitives:
    def test_charge_batch_matches_scalar_fold(self):
        costs = numpy.array([0.1, 0.2, 0.3, 1e-9, 7.7], dtype=numpy.float64)
        batched = NetworkLink()
        batched.ship_query(100.0, timestamp=0.0)
        batched.charge_batch(
            Mechanism.QUERY_SHIPPING, batched.cost_model.cost_array(costs)
        )
        scalar = NetworkLink()
        scalar.ship_query(100.0, timestamp=0.0)
        for cost in costs.tolist():
            scalar.ship_query(cost, timestamp=0.0)
        assert batched.total_cost == scalar.total_cost
        assert batched.total_by_mechanism() == scalar.total_by_mechanism()

    def test_charge_batch_refuses_record_keeping(self):
        link = NetworkLink(keep_records=True)
        with pytest.raises(RuntimeError):
            link.charge_batch(Mechanism.QUERY_SHIPPING, numpy.array([1.0]))

    def test_cost_array_matches_scalar_models(self):
        sizes = numpy.array([0.0, 0.5, 1.0, 3.25], dtype=numpy.float64)
        for model in (LinearCostModel(2.0), AffineCostModel(0.25, 2.0)):
            expected = [model.cost(float(size)) for size in sizes]
            assert model.cost_array(sizes).tolist() == expected

    def test_ingest_update_columns_matches_scalar(self, catalog):
        updates = [
            make_update(index, object_id=1 + index % 5, cost=0.1 * index,
                        timestamp=float(index))
            for index in range(30)
        ]
        batched = Repository(catalog, keep_update_log=False)
        batched.ingest_update_columns(
            numpy.array([update.object_id for update in updates], dtype=numpy.int64),
            numpy.array([update.rows for update in updates], dtype=numpy.int64),
            numpy.array([update.cost for update in updates], dtype=numpy.float64),
        )
        scalar = Repository(catalog, keep_update_log=False)
        for update in updates:
            scalar.ingest_update(update)
        assert batched.stats() == scalar.stats()
        # load_object hands out the post-ingest snapshot (version, size,
        # as_of); calling it symmetrically keeps the comparison fair.
        for oid in catalog.object_ids:
            batched_snapshot, _ = batched.load_object(oid, timestamp=999.0)
            scalar_snapshot, _ = scalar.load_object(oid, timestamp=999.0)
            assert batched_snapshot == scalar_snapshot

    def test_ingest_update_columns_refuses_update_log(self, catalog):
        repository = Repository(catalog, keep_update_log=True)
        with pytest.raises(RuntimeError):
            repository.ingest_update_columns(
                numpy.array([1], dtype=numpy.int64),
                numpy.array([1], dtype=numpy.int64),
                numpy.array([1.0], dtype=numpy.float64),
            )

    def test_unknown_object_rejected(self, catalog):
        repository = Repository(catalog, keep_update_log=False)
        with pytest.raises(KeyError):
            repository.ingest_update_columns(
                numpy.array([999], dtype=numpy.int64),
                numpy.array([1], dtype=numpy.int64),
                numpy.array([1.0], dtype=numpy.float64),
            )
        with pytest.raises(KeyError):
            repository.answer_query_batch(numpy.array([999], dtype=numpy.int64), 1)

    def test_note_batch_matches_per_event_hooks(self, catalog):
        repository = Repository(catalog, keep_update_log=False)
        link = NetworkLink()
        reference = NoCachePolicy(repository, 0.0, link)
        query = make_query(1, object_ids=[1], cost=1.0, timestamp=1.0)
        update = make_update(1, object_id=1, cost=1.0, timestamp=1.0)
        for _ in range(3):
            reference.observer.note_query(query)
            reference.observer.note_shipped_query(query)
        for _ in range(2):
            reference.observer.note_update(update)
        reference.observer.note_cache_answer(query)
        batched = NoCachePolicy(repository, 0.0, link)
        batched.observer.note_batch(
            queries=3, updates=2, cache_answers=1, shipped_queries=3
        )
        for attribute in (
            "queries_seen", "updates_seen", "cache_answers", "shipped_queries"
        ):
            assert getattr(batched.observer, attribute) == getattr(
                reference.observer, attribute
            )
