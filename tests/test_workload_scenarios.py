"""Shape tests for the scenario-diversity workload models.

Every model is deterministic in its seed, so these tests assert the
*qualitative* property each model exists for -- migration, modulation,
correlation -- on fixed-seed streams, plus the declarative plumbing
(ExperimentConfig knobs, ScenarioSpec round-trips, registered experiments).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given

from repro import api
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.experiments.spec import ScenarioError, ScenarioSpec, load_scenario
from repro.repository.catalog import sdss_catalog
from repro.workload.fuzz import STREAM_CLASSES, check_stream_invariants
from repro.workload.scenarios import (
    CacheAdversaryStream,
    DiurnalStream,
    FlashCrowdStream,
    UpdateStormStream,
)
from tests.strategies import segment_specs


@pytest.fixture(scope="module")
def catalog():
    return sdss_catalog(object_count=48, scale=0.002, seed=21)


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


class TestFlashCrowdModel:
    def test_crowd_intensifies_focus(self, catalog):
        stream = FlashCrowdStream(
            catalog=catalog,
            query_count=1200,
            update_count=0,
            mean_query_cost=2.0,
            mean_update_cost=2.0,
            seed=3,
            crowd_count=1,
            crowd_arrival=0.5,
            crowd_duration=0.4,
            base_intensity=0.5,
            crowd_intensity=0.95,
        )
        queries = list(stream.queries())
        start, stop = stream._crowd_windows()[0]

        def hot_fraction(window, top=6):
            counts = {}
            for query in window:
                for oid in query.object_ids:
                    counts[oid] = counts.get(oid, 0) + 1
            ranked = sorted(counts.values(), reverse=True)
            return sum(ranked[:top]) / max(1, sum(ranked))

        # During the crowd, accesses concentrate much harder on the top
        # objects than the stationary pre-crowd mix.
        assert hot_fraction(queries[start:stop]) > hot_fraction(queries[:start]) + 0.1

    def test_windows_do_not_overlap_and_respect_arrival(self, catalog):
        stream = FlashCrowdStream(
            catalog=catalog,
            query_count=1000,
            update_count=0,
            mean_query_cost=1.0,
            mean_update_cost=1.0,
            crowd_count=3,
            crowd_arrival=0.3,
            crowd_duration=0.5,
        )
        windows = stream._crowd_windows()
        assert windows[0][0] == 300
        for (_, stop), (start, _) in zip(windows, windows[1:], strict=False):
            assert stop <= start

    def test_back_to_back_crowds_all_fire(self, catalog):
        # duration >= spacing makes the windows tile the tail of the stream;
        # every crowd must still get its arrival transition (regression: the
        # window-exit branch used to swallow the next window's start index).
        stream = FlashCrowdStream(
            catalog=catalog,
            query_count=1000,
            update_count=0,
            mean_query_cost=2.0,
            mean_update_cost=2.0,
            cost_sigma=0.0,
            crowd_count=3,
            crowd_arrival=0.3,
            crowd_duration=0.5,
            base_intensity=0.0,
            crowd_intensity=1.0,
            crowd_cost_factor=1.5,
            background_cost_factor=0.25,
        )
        windows = stream._crowd_windows()
        assert [start for start, _ in windows] == [300, 533, 766]
        queries = list(stream.queries())
        crowd_cost = 2.0 * 1.5
        for start, stop in windows:
            assert all(
                query.cost == pytest.approx(crowd_cost)
                for query in queries[start:stop]
            ), (start, stop)
        assert all(
            query.cost == pytest.approx(2.0 * 0.25) for query in queries[:300]
        )

    def test_update_region_matches_update_stream(self, catalog):
        stream = FlashCrowdStream(
            catalog=catalog,
            query_count=0,
            update_count=2000,
            mean_query_cost=1.0,
            mean_update_cost=1.0,
            seed=8,
        )
        region = set(stream.update_region())
        hits = sum(1 for u in stream.updates() if u.object_id in region)
        # scan_probability-style 0.8 of updates land inside the region.
        assert hits / 2000 > 0.7


class TestDiurnalModel:
    def test_query_and_update_costs_run_anti_phase(self, catalog):
        stream = DiurnalStream(
            catalog=catalog,
            query_count=2000,
            update_count=2000,
            mean_query_cost=2.0,
            mean_update_cost=2.0,
            seed=4,
            cycles=1,
            amplitude=0.8,
        )
        queries = list(stream.queries())
        updates = list(stream.updates())
        half = len(queries) // 2
        # First half-cycle: sin > 0 -> query costs above their mean, update
        # costs below theirs; second half-cycle reverses.
        assert _mean(q.cost for q in queries[:half]) > _mean(
            q.cost for q in queries[half:]
        )
        assert _mean(u.cost for u in updates[:half]) < _mean(
            u.cost for u in updates[half:]
        )

    def test_amplitude_zero_is_flat(self, catalog):
        stream = DiurnalStream(
            catalog=catalog,
            query_count=1000,
            update_count=0,
            mean_query_cost=2.0,
            mean_update_cost=2.0,
            cost_sigma=0.0,
            amplitude=0.0,
        )
        hot_costs = {round(q.cost, 9) for q in stream.queries()}
        # With no wobble and no modulation only the hot/background split remains.
        assert len(hot_costs) == 2


class TestUpdateStormModel:
    def _stream(self, catalog, **overrides):
        kwargs = dict(
            catalog=catalog,
            query_count=0,
            update_count=3000,
            mean_query_cost=1.0,
            mean_update_cost=1.0,
            seed=6,
            storm_count=4,
            storm_length=200,
            storm_width=3,
            storm_cost_factor=4.0,
        )
        kwargs.update(overrides)
        return UpdateStormStream(**kwargs)

    def test_storms_are_correlated_bursts(self, catalog):
        stream = self._stream(catalog)
        updates = list(stream.updates())
        for start, stop in stream._storm_windows():
            window = updates[start:stop]
            touched = {u.object_id for u in window}
            assert len(touched) <= stream.storm_width
            assert _mean(u.cost for u in window) > 2.0 * _mean(
                u.cost for u in updates[: stream._storm_windows()[0][0]]
            )

    def test_back_to_back_storms_all_fire(self, catalog):
        # storm_length >= spacing: every storm window must still break
        # (regression: only the first storm used to fire).
        stream = self._stream(
            catalog,
            update_count=1400,
            storm_count=6,
            storm_length=300,
            cost_sigma=0.0,
        )
        windows = stream._storm_windows()
        assert len(windows) == 6
        updates = list(stream.updates())
        storm_cost = 1.0 * stream.storm_cost_factor
        for start, stop in windows:
            window = updates[start:stop]
            assert len({u.object_id for u in window}) <= stream.storm_width
            assert all(u.cost == pytest.approx(storm_cost) for u in window), (
                start,
                stop,
            )

    def test_storms_target_focus_block_when_asked(self, catalog):
        stream = self._stream(catalog, storm_on_focus=1.0, query_count=10)
        focus = set(stream.update_region())
        updates = list(stream.updates())
        for start, stop in stream._storm_windows():
            assert {u.object_id for u in updates[start:stop]} <= focus


class TestCacheAdversaryModel:
    def _stream(self, catalog, **overrides):
        kwargs = dict(
            catalog=catalog,
            query_count=600,
            update_count=600,
            mean_query_cost=1.0,
            mean_update_cost=1.0,
            seed=9,
            working_set_bytes=0.15 * catalog.total_size,
        )
        kwargs.update(overrides)
        return CacheAdversaryStream(**kwargs)

    def test_working_set_just_exceeds_the_requested_bytes(self, catalog):
        stream = self._stream(catalog)
        working = stream._working_set()
        sizes = [catalog.size_of(oid) for oid in working]
        assert sum(sizes) > stream.working_set_bytes
        # "Just" past: dropping the last member falls back under the target
        # (unless the two-object floor is what kept it).
        assert len(working) >= 2
        if len(working) > 2:
            assert sum(sizes[:-1]) <= stream.working_set_bytes

    def test_cycle_is_strict_round_robin_over_the_working_set(self, catalog):
        stream = self._stream(catalog, scan_probability=0.0, update_count=0)
        working = stream._working_set()
        queries = list(stream.queries())
        for index, query in enumerate(queries):
            assert query.object_ids == frozenset(
                {working[index % len(working)]}
            )

    def test_scans_march_beyond_the_working_set(self, catalog):
        stream = self._stream(catalog, scan_probability=1.0, update_count=0)
        touched = set()
        for query in stream.queries():
            assert len(query.object_ids) == stream.footprint_span
            touched |= query.object_ids
        # A pure scan sweeps the whole catalogue, not just the hot cycle.
        assert touched == set(catalog.object_ids)

    def test_updates_concentrate_on_the_working_set(self, catalog):
        stream = self._stream(catalog, query_count=0, update_in_set=1.0)
        region = set(stream.update_region())
        assert region == set(stream._working_set())
        assert all(u.object_id in region for u in stream.updates())

    def test_validators_reject_bad_knobs(self, catalog):
        with pytest.raises(ValueError, match="working_set_bytes"):
            self._stream(catalog, working_set_bytes=0.0)
        with pytest.raises(ValueError, match="scan_probability"):
            self._stream(catalog, scan_probability=1.5)
        with pytest.raises(ValueError, match="update_in_set"):
            self._stream(catalog, update_in_set=-0.1)


#: Module-scoped so the hypothesis property below can reuse one catalogue.
INVARIANT_CATALOG = sdss_catalog(object_count=32, scale=0.001, seed=17)


@given(segment=segment_specs(max_events=60))
def test_property_every_model_stream_holds_the_trace_invariants(segment):
    """Any model under any valid knobs yields a structurally sound stream.

    This is the per-model form of the composition invariants the fuzzer
    suite checks: driven by the shared ``segment_specs`` strategy, so the
    knob ranges widen in one place for both suites.
    """
    stream = STREAM_CLASSES[segment.model](
        catalog=INVARIANT_CATALOG,
        query_count=segment.query_count,
        update_count=segment.update_count,
        mean_query_cost=2.0,
        mean_update_cost=2.0,
        seed=11,
        **dict(segment.knobs),
    )
    check_stream_invariants(stream, INVARIANT_CATALOG)


class TestDeclarativePlumbing:
    def test_scenario_spec_round_trips_workload_model(self, tmp_path):
        spec = ScenarioSpec.from_knobs(
            name="stormy",
            workload_model="update_storm",
            query_count=200,
            update_count=200,
            storm_count=2,
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        path = tmp_path / "stormy.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert load_scenario(path) == spec

    def test_workload_model_knob_is_validated(self):
        with pytest.raises(ScenarioError, match="must be a string"):
            ScenarioSpec.from_knobs(workload_model=3)
        with pytest.raises(ScenarioError, match="unknown workload_model"):
            ScenarioSpec.from_knobs(workload_model="tsunami")

    def test_build_scenario_dispatches_models(self):
        config = ExperimentConfig(
            object_count=16,
            query_count=120,
            update_count=120,
            workload_model="diurnal",
        )
        scenario = build_scenario(config)
        assert len(scenario.trace) == 240
        assert scenario.update_region == []

    @pytest.mark.parametrize(
        "name", ["flash_crowd", "diurnal", "update_storm", "cache_adversary"]
    )
    def test_registered_experiments_run(self, name):
        result = api.run_experiment(
            name,
            overrides={
                "object_count": 16,
                "query_count": 150,
                "update_count": 150,
                "policies": ("nocache", "vcover"),
            },
        )
        assert result.model == name
        assert result.streaming is True
        assert result.comparison.traffic_of("nocache") > 0
        rendered = api.format_result(name, result)
        assert name in rendered and "streaming" in rendered

    def test_experiment_forces_its_model(self):
        # A caller config with the default workload_model still runs the
        # experiment's own model.
        result = api.run_experiment(
            "flash_crowd",
            overrides={
                "object_count": 16,
                "query_count": 100,
                "update_count": 100,
                "workload_model": "evolving",
                "policies": ("nocache",),
            },
        )
        assert result.model == "flash_crowd"
