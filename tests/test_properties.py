"""Cross-module property-based tests (hypothesis).

These complement the per-module property tests with invariants that span
multiple components: the online UpdateManager against the offline optimum,
policy accounting identities under random event streams, and trace
serialisation round-trips for generated workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.offline import OfflineDecoupler
from repro.core.update_manager import UpdateManager
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update
from repro.workload.trace import Trace, UpdateEvent
from tests.strategies import build_trace, event_stream

CATALOG = ObjectCatalog.from_sizes({1: 20.0, 2: 30.0, 3: 40.0, 4: 50.0})


def replay(policy_factory, trace):
    """Replay a trace against a fresh repository/policy; return (policy, link)."""
    repository = Repository(CATALOG)
    link = NetworkLink()
    policy = policy_factory(repository, link)
    outcomes = []
    for event in trace:
        if isinstance(event, UpdateEvent):
            repository.ingest_update(event.update)
            policy.on_update(event.update)
        else:
            outcomes.append(policy.on_query(event.query))
    return policy, link, outcomes


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream())
def test_property_vcover_accounting_identity(raw):
    """Link totals always equal the sum of per-query outcome costs."""
    trace = build_trace(raw)
    policy, link, outcomes = replay(
        lambda repo, link: VCoverPolicy(repo, 60.0, link, VCoverConfig(seed=1)), trace
    )
    assert link.total_cost == pytest.approx(sum(o.total_cost for o in outcomes))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream())
def test_property_vcover_never_violates_currency(raw):
    """Cache answers always reflect every update outside the tolerance window."""
    trace = build_trace(raw)
    repository = Repository(CATALOG)
    link = NetworkLink()
    policy = VCoverPolicy(repository, 70.0, link, VCoverConfig(seed=2))
    for event in trace:
        if isinstance(event, UpdateEvent):
            repository.ingest_update(event.update)
            policy.on_update(event.update)
        else:
            outcome = policy.on_query(event.query)
            if outcome.answered_at_cache:
                for object_id in event.query.object_ids:
                    assert policy.interacting_updates(event.query, object_id) == []


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream())
def test_property_vcover_capacity_never_exceeded(raw):
    """The cache store never holds more bytes than its capacity."""
    trace = build_trace(raw)
    policy, _, _ = replay(
        lambda repo, link: VCoverPolicy(repo, 55.0, link, VCoverConfig(seed=3)), trace
    )
    assert policy.store.used <= policy.store.capacity + 1e-9


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream())
def test_property_yardstick_identities(raw):
    """NoCache pays exactly the query bytes; Replica exactly the update bytes."""
    trace = build_trace(raw)
    _, nocache_link, _ = replay(lambda repo, link: NoCachePolicy(repo, 0.0, link), trace)
    _, replica_link, _ = replay(lambda repo, link: ReplicaPolicy(repo, 0.0, link), trace)
    assert nocache_link.total_cost == pytest.approx(trace.total_query_cost())
    assert replica_link.total_cost == pytest.approx(trace.total_update_cost())


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream(max_objects=3, max_events=25))
def test_property_update_manager_ships_enough_for_currency(raw):
    """Whenever the UpdateManager keeps a query at the cache, the updates it
    ships cover every interaction of that query."""
    manager = UpdateManager()
    outstanding = {}
    for index, (kind, object_ids, cost, tolerance) in enumerate(raw):
        timestamp = float(index + 1)
        if kind == "update":
            update = Update(
                update_id=index, object_id=object_ids[0], cost=cost, timestamp=timestamp
            )
            outstanding.setdefault(update.object_id, []).append(update)
        else:
            query = Query(
                query_id=index,
                object_ids=frozenset(object_ids),
                cost=cost,
                timestamp=timestamp,
                tolerance=tolerance,
            )
            interacting = {
                oid: [u for u in outstanding.get(oid, []) if query.requires_update(u.timestamp)]
                for oid in query.object_ids
            }
            interacting = {oid: ups for oid, ups in interacting.items() if ups}
            result = manager.decide(query, interacting)
            required = {u.update_id for ups in interacting.values() for u in ups}
            if not result.ship_query:
                assert required <= set(result.ship_update_ids)
            for update_id in result.ship_update_ids:
                for ups in outstanding.values():
                    ups[:] = [u for u in ups if u.update_id != update_id]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream(max_objects=3, max_events=20))
def test_property_offline_cost_is_a_lower_bound_for_in_cache_decisions(raw):
    """The offline cover never costs more than any feasible online choice.

    We compare against two trivially feasible strategies on the fully cached
    object set: ship every query, or ship every interacting update.
    """
    queries = []
    updates = []
    for index, (kind, object_ids, cost, tolerance) in enumerate(raw):
        timestamp = float(index + 1)
        if kind == "query":
            queries.append(
                Query(
                    query_id=index, object_ids=frozenset(object_ids), cost=cost,
                    timestamp=timestamp, tolerance=tolerance,
                )
            )
        else:
            updates.append(
                Update(update_id=index, object_id=object_ids[0], cost=cost, timestamp=timestamp)
            )
    decoupler = OfflineDecoupler(cached_objects=[1, 2, 3])
    instance = decoupler.build_instance(queries, updates)
    decision = decoupler.solve(queries, updates)
    ship_all_queries = sum(instance.left_weights.values())
    ship_all_updates = sum(instance.right_weights.values())
    assert decision.total_cost <= ship_all_queries + 1e-6
    assert decision.total_cost <= ship_all_updates + 1e-6


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(raw=event_stream(max_events=30))
def test_property_trace_round_trip(raw, tmp_path_factory):
    """Any generated trace survives a JSONL round-trip unchanged."""
    trace = build_trace(raw)
    path = tmp_path_factory.mktemp("traces") / "trace.jsonl"
    trace.to_jsonl(path)
    loaded = Trace.from_jsonl(path)
    assert len(loaded) == len(trace)
    assert loaded.total_query_cost() == pytest.approx(trace.total_query_cost())
    assert loaded.total_update_cost() == pytest.approx(trace.total_update_cost())
