"""Determinism harness: the optimized engine vs recorded seed payloads.

The hot-path work (type-tagged dispatch, warm-started flow bookkeeping,
``__slots__`` records, cached interacting-update lookups) is only allowed to
make runs *faster*, never *different*.  These tests replay the scenarios in
:mod:`tests.determinism_cases` and require the canonical JSON form of every
``RunResult`` payload -- totals, per-mechanism traffic, time series,
occupancy, policy stats -- to be byte-identical to the fixtures recorded
from the pre-optimisation tree, serial and parallel alike.

If one of these tests fails, the optimisation being developed changed
simulation behaviour; fix the optimisation.  Regenerate the fixtures
(``python tests/generate_determinism_fixtures.py``) only for a change that
is *meant* to alter results, and say so in the commit message.
"""

from __future__ import annotations

import json

import pytest

from tests.determinism_cases import (
    ADAPTIVE_POLICIES,
    CASES,
    FIXTURE_DIR,
    POLICIES,
    adaptive_payloads,
    canonical,
    flashcrowd_payloads,
    headline_payloads,
    ingested_payloads,
    multisite_payloads,
)


def recorded(name: str) -> str:
    path = FIXTURE_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing fixture {path}; run tests/generate_determinism_fixtures.py"
    )
    return path.read_text(encoding="utf-8").rstrip("\n")


@pytest.fixture(scope="module")
def headline_fixture():
    return json.loads(recorded("headline"))


class TestHeadlineScenario:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_payloads_byte_identical(self, jobs):
        assert canonical(headline_payloads(jobs=jobs)) == recorded("headline")

    def test_fixture_covers_all_policies_and_both_cache_sizes(self, headline_fixture):
        assert set(headline_fixture) == {"small", "default"}
        for setup in ("small", "default"):
            assert set(headline_fixture[setup]) == set(POLICIES)

    def test_fixture_has_decision_loop_activity(self, headline_fixture):
        # Guard against the scenario degenerating into a trivial one where
        # the cover machinery never runs (which would make the byte-identity
        # checks vacuous for the flow layer).
        stats = headline_fixture["default"]["vcover"]["policy_stats"]
        assert stats["update_manager_covers_computed"] > 0
        assert stats["update_manager_decisions"] > 0

    def test_fixture_time_series_sampled(self, headline_fixture):
        run = headline_fixture["default"]["vcover"]
        assert len(run["time_series"]) > 3
        assert run["time_series"][-1][0] == run["events_processed"]
        assert run["total_traffic"] > 0
        assert set(run["traffic_by_mechanism"]) == {
            "query_shipping",
            "update_shipping",
            "object_loading",
        }


class TestMultisiteScenario:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_payloads_byte_identical(self, jobs):
        assert canonical(multisite_payloads(jobs=jobs)) == recorded("multisite")

    def test_fixture_has_per_site_breakdown(self):
        payload = json.loads(recorded("multisite"))
        stats = payload["vcover-x2"]["policy_stats"]
        assert stats["site_count"] == 2.0
        assert "site0_measured_traffic" in stats
        assert "site1_measured_traffic" in stats


class TestFlashCrowdScenario:
    """The streaming pipeline's determinism anchor.

    One fixture, two replay paths: the materialised trace and the
    lazily-generated stream must both reproduce it byte-for-byte, serial
    and parallel alike.
    """

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_materialised_payloads_byte_identical(self, jobs):
        assert canonical(flashcrowd_payloads(jobs=jobs)) == recorded("flashcrowd")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_streaming_payloads_byte_identical(self, jobs):
        assert canonical(
            flashcrowd_payloads(jobs=jobs, streaming=True)
        ) == recorded("flashcrowd")

    def test_fixture_covers_all_policies(self):
        payload = json.loads(recorded("flashcrowd"))
        assert set(payload) == set(POLICIES)
        assert payload["vcover"]["total_traffic"] > 0


class TestIngestedScenario:
    """The ingest pipeline's determinism anchor.

    The fixture pins the payloads of the scenario *calibrated from the
    committed sample log*: a drift in the CSV reader, the id mapping, any
    calibration fit, or the replay of the emitted spec shows up as a byte
    difference.  Both replay paths must reproduce it, serial and parallel.
    """

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_materialised_payloads_byte_identical(self, jobs):
        assert canonical(ingested_payloads(jobs=jobs)) == recorded("ingested")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_streaming_payloads_byte_identical(self, jobs):
        assert canonical(
            ingested_payloads(jobs=jobs, streaming=True)
        ) == recorded("ingested")

    def test_fixture_covers_all_policies(self):
        payload = json.loads(recorded("ingested"))
        assert set(payload) == set(POLICIES)
        assert payload["vcover"]["total_traffic"] > 0


class TestAdaptiveScenario:
    """The adaptive meta-policy's determinism anchor.

    The fixture pins the whole shadow-scoring pipeline byte-for-byte: the
    per-arm epoch scores, the switch decisions (and their real load costs),
    and the per-epoch offline regret solves.  As with the other streaming
    anchors, one fixture covers both replay paths, serial and parallel.
    """

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_materialised_payloads_byte_identical(self, jobs):
        assert canonical(adaptive_payloads(jobs=jobs)) == recorded("adaptive")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_streaming_payloads_byte_identical(self, jobs):
        assert canonical(
            adaptive_payloads(jobs=jobs, streaming=True)
        ) == recorded("adaptive")

    def test_fixture_covers_expected_policies(self):
        payload = json.loads(recorded("adaptive"))
        assert set(payload) == set(ADAPTIVE_POLICIES)

    def test_fixture_has_meta_policy_activity(self):
        # Guard against the scenario degenerating into one where the
        # meta-policy never switches arms (which would leave the switch
        # bookkeeping and the score-vs-cost guard untested).
        run = json.loads(recorded("adaptive"))["adaptive"]
        stats = run["policy_stats"]
        assert stats["epochs"] > 2
        assert stats["switches"] > 0
        assert stats["switch_traffic"] > 0
        assert run["regret"]["epochs"] == stats["epochs"]
        assert run["regret"]["total"] >= 0.0


def test_cases_registry_matches_fixture_files():
    on_disk = {path.stem for path in FIXTURE_DIR.glob("*.json")}
    assert on_disk == set(CASES)
